// RCHX v2 snapshot files (core/serialize.h, docs/SNAPSHOTS.md): zero-copy
// round-trips on flat and compressed storage, truncation/corruption
// robustness with section-level diagnostics, and the ReachService
// mmap-startup path.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mapped_file.h"
#include "core/serialize.h"
#include "graph/generators.h"
#include "plain/pruned_two_hop.h"
#include "serve/reach_service.h"

namespace reach {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string SnapshotBytes(const PrunedTwoHop& index) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(index.SaveSnapshot(out));
  return out.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void ExpectSameAnswers(const PrunedTwoHop& got, const PrunedTwoHop& want,
                       VertexId n) {
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      ASSERT_EQ(got.Query(s, t), want.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(SnapshotTest, FlatRoundTripPreservesAllAnswers) {
  const Digraph g = RandomDigraph(70, 300, 3);
  PrunedTwoHop index;
  index.Build(g);
  const std::string path = TempPath("snap_flat.rchx");
  WriteFile(path, SnapshotBytes(index));

  PrunedTwoHop loaded;
  const LoadResult result = loaded.LoadSnapshot(path);
  ASSERT_TRUE(result) << LoadStatusMessage(result);
  EXPECT_EQ(loaded.NumIndexedVertices(), g.NumVertices());
  EXPECT_FALSE(loaded.CompressedStorage());
  EXPECT_EQ(loaded.TotalLabelEntries(), index.TotalLabelEntries());
  ExpectSameAnswers(loaded, index, g.NumVertices());
}

TEST(SnapshotTest, CompressedRoundTripPreservesAllAnswers) {
  const Digraph g = ScaleFreeDag(90, 4, 5);
  TwoHopStorageOptions storage;
  storage.compress = true;
  storage.block_entries = 16;
  PrunedTwoHop index(VertexOrder::kDegree, 0x70'6c'6cULL, 0, storage);
  index.Build(g);
  ASSERT_TRUE(index.CompressedStorage());
  const std::string path = TempPath("snap_compressed.rchx");
  WriteFile(path, SnapshotBytes(index));

  PrunedTwoHop loaded;
  const LoadResult result = loaded.LoadSnapshot(path);
  ASSERT_TRUE(result) << LoadStatusMessage(result);
  EXPECT_TRUE(loaded.CompressedStorage());
  EXPECT_EQ(loaded.TotalLabelEntries(), index.TotalLabelEntries());
  ExpectSameAnswers(loaded, index, g.NumVertices());
}

TEST(SnapshotTest, RoundTripFoldsInInsertedEdges) {
  const Digraph g = RandomDag(60, 200, 7);
  PrunedTwoHop index;
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate(
      {EdgeUpdate::Insert(3, 57), EdgeUpdate::Insert(41, 8)}).ok());
  const std::string path = TempPath("snap_delta.rchx");
  WriteFile(path, SnapshotBytes(index));

  PrunedTwoHop loaded;
  ASSERT_TRUE(loaded.LoadSnapshot(path));
  // The snapshot captures the post-insert labeling.
  ExpectSameAnswers(loaded, index, g.NumVertices());
}

TEST(SnapshotTest, LoadedMappingSurvivesSourceFileHandle) {
  // The index keeps the mapping alive itself: querying after the loading
  // scope closed every other handle must still work.
  const Digraph g = RandomDigraph(40, 150, 11);
  PrunedTwoHop index;
  index.Build(g);
  const std::string path = TempPath("snap_lifetime.rchx");
  WriteFile(path, SnapshotBytes(index));

  PrunedTwoHop loaded;
  {
    std::string error;
    auto file = MappedFile::Open(path, &error);
    ASSERT_NE(file, nullptr) << error;
    ASSERT_TRUE(loaded.LoadSnapshot(std::move(file)));
  }
  ExpectSameAnswers(loaded, index, g.NumVertices());
}

TEST(SnapshotTest, EveryTruncationFailsCleanly) {
  const Digraph g = RandomDigraph(30, 100, 13);
  PrunedTwoHop index;
  index.Build(g);
  const std::string bytes = SnapshotBytes(index);
  ASSERT_GT(bytes.size(), 4096u);

  // Exhaustive over the header/table region, sampled over the payload.
  std::vector<size_t> cuts;
  for (size_t i = 0; i < 256 && i < bytes.size(); ++i) cuts.push_back(i);
  for (size_t i = 256; i < bytes.size(); i += 97) cuts.push_back(i);
  const std::string path = TempPath("snap_truncated.rchx");
  for (const size_t cut : cuts) {
    WriteFile(path, bytes.substr(0, cut));
    PrunedTwoHop loaded;
    const LoadResult result = loaded.LoadSnapshot(path);
    EXPECT_FALSE(result) << "prefix of " << cut << " bytes loaded";
    EXPECT_NE(result.status, LoadStatus::kOk);
  }
}

TEST(SnapshotTest, MisalignedSectionTableIsRejectedWithDiagnostics) {
  const Digraph g = RandomDigraph(30, 100, 17);
  PrunedTwoHop index;
  index.Build(g);
  std::string bytes = SnapshotBytes(index);
  // Name "pll" -> prelude ends at byte 19, table starts at 24; the first
  // record's u64 offset lives at bytes [24, 32). Knocking it off its
  // alignment must be caught by table validation, before any payload use.
  ASSERT_GT(bytes.size(), 32u);
  bytes[24] = static_cast<char>(static_cast<uint8_t>(bytes[24]) ^ 0x1);
  const std::string path = TempPath("snap_misaligned.rchx");
  WriteFile(path, bytes);

  PrunedTwoHop loaded;
  const LoadResult result = loaded.LoadSnapshot(path);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status, LoadStatus::kCorrupt);
  EXPECT_NE(result.detail.find("misaligned"), std::string::npos)
      << result.detail;
  EXPECT_NE(result.detail.find("at byte"), std::string::npos) << result.detail;
}

TEST(SnapshotTest, FailureNamesSectionAndOffset) {
  const Digraph g = RandomDigraph(30, 100, 19);
  PrunedTwoHop index;
  index.Build(g);
  std::string bytes = SnapshotBytes(index);
  // Shrink the last section by chopping the file tail: the table still
  // parses, the section bounds check fails with a located diagnostic.
  const std::string path = TempPath("snap_short_section.rchx");
  WriteFile(path, bytes.substr(0, bytes.size() - 1));

  PrunedTwoHop loaded;
  const LoadResult result = loaded.LoadSnapshot(path);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status, LoadStatus::kCorrupt);
  EXPECT_FALSE(result.detail.empty());
  // The full message is render-ready for logs/CLI.
  EXPECT_NE(LoadStatusMessage(result).find(LoadStatusMessage(result.status)),
            std::string::npos);
}

TEST(SnapshotTest, SnapshotFileHandedToStreamLoadFailsAsBadVersion) {
  const Digraph g = RandomDigraph(25, 80, 23);
  PrunedTwoHop index;
  index.Build(g);
  std::istringstream in(SnapshotBytes(index), std::ios::binary);
  PrunedTwoHop loaded;
  const LoadResult result = loaded.Load(in);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status, LoadStatus::kBadVersion);
}

TEST(SnapshotTest, StreamFileHandedToSnapshotLoadFailsAsBadVersion) {
  const Digraph g = RandomDigraph(25, 80, 27);
  PrunedTwoHop index;
  index.Build(g);
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(index.Save(out));
  const std::string path = TempPath("snap_v1_stream.rchx");
  WriteFile(path, out.str());

  PrunedTwoHop loaded;
  const LoadResult result = loaded.LoadSnapshot(path);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status, LoadStatus::kBadVersion);
}

TEST(SnapshotTest, WrongFormatNameIsRejected) {
  SnapshotWriter writer("zzz");
  const uint32_t payload[] = {1, 2, 3};
  writer.AddSection(1, payload, sizeof(payload));
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(writer.WriteTo(out));
  const std::string bytes = out.str();

  SnapshotView view;
  const LoadResult result = view.Parse(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(), "pll");
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status, LoadStatus::kWrongIndex);
  EXPECT_EQ(result.detail, "zzz");
}

TEST(SnapshotTest, ViewRejectsDuplicateSectionKinds) {
  SnapshotWriter writer("pll");
  const uint32_t payload[] = {1, 2, 3};
  writer.AddSection(7, payload, sizeof(payload));
  writer.AddSection(7, payload, sizeof(payload));
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(writer.WriteTo(out));
  const std::string bytes = out.str();

  SnapshotView view;
  const LoadResult result = view.Parse(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(), "pll");
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status, LoadStatus::kCorrupt);
}

TEST(SnapshotTest, SectionsArePageAligned) {
  SnapshotWriter writer("pll");
  const uint8_t a[3] = {1, 2, 3};
  const uint64_t b[5] = {4, 5, 6, 7, 8};
  writer.AddSection(1, a, sizeof(a));
  writer.AddSection(2, b, sizeof(b));
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(writer.WriteTo(out));
  const std::string bytes = out.str();

  SnapshotView view;
  ASSERT_TRUE(view.Parse(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size(), "pll"));
  ASSERT_TRUE(view.Has(1));
  ASSERT_TRUE(view.Has(2));
  EXPECT_FALSE(view.Has(3));
  const auto sec1 = view.Section(1);
  const auto sec2 = view.Section(2);
  EXPECT_EQ(
      (reinterpret_cast<uintptr_t>(sec1.data()) -
       reinterpret_cast<uintptr_t>(bytes.data())) % kSnapshotPageAlign, 0u);
  EXPECT_EQ(sec1.size(), sizeof(a));
  EXPECT_EQ(std::memcmp(sec1.data(), a, sizeof(a)), 0);
  const auto typed = view.TypedSection<uint64_t>(2);
  ASSERT_EQ(typed.size(), 5u);
  EXPECT_EQ(typed[4], 8u);
  // Size not a multiple of the element type -> empty typed view.
  EXPECT_TRUE(view.TypedSection<uint64_t>(1).empty());
}

TEST(ServeSnapshotTest, StartWithSnapshotServesIndexBackedAnswers) {
  const Digraph g = RandomDigraph(50, 220, 29);
  PrunedTwoHop oracle;
  oracle.Build(g);
  const std::string path = TempPath("snap_serve.rchx");
  WriteFile(path, SnapshotBytes(oracle));

  ReachService service(g);
  const LoadResult result = service.StartWithSnapshot(path);
  ASSERT_TRUE(result) << LoadStatusMessage(result);
  EXPECT_GT(service.SnapshotVersion(), 0u);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      const ServeAnswer answer = service.Query(s, t);
      ASSERT_EQ(answer.reachable, oracle.Query(s, t)) << s << "->" << t;
      ASSERT_TRUE(answer.exact);
    }
  }
  // No fallback BFS: every answer was index-backed (or negative-cached).
  EXPECT_EQ(service.stats().fallback_answers.load(), 0u);
  service.Stop();
}

TEST(ServeSnapshotTest, StartWithSnapshotAcceptsSubsequentInserts) {
  const Digraph g = LayeredDag(8, 5, 2, 31);
  PrunedTwoHop built;
  built.Build(g);
  const std::string path = TempPath("snap_serve_insert.rchx");
  WriteFile(path, SnapshotBytes(built));

  ReachService service(g);
  ASSERT_TRUE(service.StartWithSnapshot(path));
  ASSERT_TRUE(service.InsertEdge(1, 0));
  const ServeAnswer answer = service.Query(1, 0);
  EXPECT_TRUE(answer.reachable);
  EXPECT_TRUE(answer.exact);
  service.Flush();
  EXPECT_TRUE(service.Query(1, 0).reachable);
  service.Stop();
}

TEST(ServeSnapshotTest, VertexCountMismatchIsWrongIndex) {
  const Digraph small = RandomDigraph(20, 60, 37);
  PrunedTwoHop index;
  index.Build(small);
  const std::string path = TempPath("snap_serve_mismatch.rchx");
  WriteFile(path, SnapshotBytes(index));

  ReachService service(RandomDigraph(21, 60, 37));
  const LoadResult result = service.StartWithSnapshot(path);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status, LoadStatus::kWrongIndex);
  EXPECT_NE(result.detail.find("20"), std::string::npos) << result.detail;
  EXPECT_NE(result.detail.find("21"), std::string::npos) << result.detail;
  // The failure leaves the service startable the ordinary way.
  service.Start();
  service.Flush();
  EXPECT_EQ(service.Query(0, 0).reachable, true);
  service.Stop();
}

TEST(ServeSnapshotTest, MissingFileFailsWithoutStartingService) {
  ReachService service(Chain(10));
  const LoadResult result =
      service.StartWithSnapshot(TempPath("snap_does_not_exist.rchx"));
  ASSERT_FALSE(result);
  service.Start();
  service.Flush();
  EXPECT_TRUE(service.Query(0, 9).reachable);
  service.Stop();
}

}  // namespace
}  // namespace reach
