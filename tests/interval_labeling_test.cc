#include "plain/interval_labeling.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/topological.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(IntervalLabelingTest, ChainIntervals) {
  const IntervalForest f = BuildIntervalForest(Chain(4), std::nullopt);
  // Post-order on a chain: deepest vertex first.
  EXPECT_EQ(f.post[3], 0u);
  EXPECT_EQ(f.post[0], 3u);
  EXPECT_EQ(f.subtree_low[0], 0u);
  EXPECT_TRUE(f.SubtreeContains(0, 3));
  EXPECT_FALSE(f.SubtreeContains(3, 0));
}

TEST(IntervalLabelingTest, PostOrderIsAPermutation) {
  const Digraph g = RandomDag(60, 180, 3);
  const IntervalForest f = BuildIntervalForest(g, std::nullopt);
  std::set<uint32_t> posts(f.post.begin(), f.post.end());
  EXPECT_EQ(posts.size(), g.NumVertices());
  EXPECT_EQ(*posts.begin(), 0u);
  EXPECT_EQ(*posts.rbegin(), g.NumVertices() - 1);
}

TEST(IntervalLabelingTest, EdgePostOrderPropertyOnDags) {
  // For every edge (u, v) of a DAG, post[v] < post[u].
  for (uint64_t seed : {1, 2, 3}) {
    const Digraph g = RandomDag(50, 160, seed);
    const IntervalForest f = BuildIntervalForest(g, seed);
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      for (VertexId v : g.OutNeighbors(u)) {
        EXPECT_LT(f.post[v], f.post[u]) << "seed " << seed;
      }
    }
  }
}

TEST(IntervalLabelingTest, ParentsFormAForestOfGraphEdges) {
  const Digraph g = RandomDag(50, 150, 5);
  const IntervalForest f = BuildIntervalForest(g, std::nullopt);
  size_t roots = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (f.parent[v] == kInvalidVertex) {
      ++roots;
    } else {
      EXPECT_TRUE(g.HasEdge(f.parent[v], v));
      EXPECT_TRUE(f.IsTreeEdge(f.parent[v], v));
    }
  }
  EXPECT_GE(roots, 1u);
}

TEST(IntervalLabelingTest, SubtreeContainsMatchesParentChains) {
  const Digraph g = RandomTree(40, 9);
  const IntervalForest f = BuildIntervalForest(g, std::nullopt);
  // On a tree the spanning forest is the tree itself, so SubtreeContains
  // must equal ancestor-ship.
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      bool ancestor = false;
      for (VertexId v = t; v != kInvalidVertex; v = f.parent[v]) {
        if (v == s) {
          ancestor = true;
          break;
        }
      }
      EXPECT_EQ(f.SubtreeContains(s, t), ancestor) << s << " " << t;
    }
  }
}

TEST(IntervalLabelingTest, SubtreeContainmentImpliesReachability) {
  const Digraph g = RandomDag(40, 120, 11);
  const IntervalForest f = BuildIntervalForest(g, 11);
  TransitiveClosure tc;
  tc.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      if (f.SubtreeContains(s, t)) {
        EXPECT_TRUE(tc.Query(s, t));
      }
    }
  }
}

TEST(IntervalLabelingTest, DifferentSeedsGiveDifferentForests) {
  const Digraph g = RandomDag(60, 240, 13);
  const IntervalForest a = BuildIntervalForest(g, 1);
  const IntervalForest b = BuildIntervalForest(g, 2);
  EXPECT_NE(a.post, b.post);
}

TEST(IntervalLabelingTest, DeterministicWithoutSeed) {
  const Digraph g = RandomDag(60, 240, 13);
  const IntervalForest a = BuildIntervalForest(g, std::nullopt);
  const IntervalForest b = BuildIntervalForest(g, std::nullopt);
  EXPECT_EQ(a.post, b.post);
  EXPECT_EQ(a.parent, b.parent);
}

TEST(IntervalLabelingTest, ReachableLowIsMinOverReachableSet) {
  const Digraph g = RandomDag(36, 100, 17);
  const IntervalForest f = BuildIntervalForest(g, std::nullopt);
  const std::vector<uint32_t> low = ComputeReachableLow(g, f);
  TransitiveClosure tc;
  tc.Build(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint32_t expected = f.post[v];
    for (VertexId w : tc.ReachableSet(v)) {
      expected = std::min(expected, f.post[w]);
    }
    EXPECT_EQ(low[v], expected) << v;
  }
}

}  // namespace
}  // namespace reach
