#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "rlc/kleene_sequence.h"
#include "rlc/rlc_index.h"
#include "rlc/rlc_product_bfs.h"

namespace reach {
namespace {

// Independent oracle: exhaustive DFS over (vertex, phase) states with its
// own visited bookkeeping.
bool BruteRlc(const LabeledDigraph& g, VertexId s, VertexId t,
              const KleeneSequence& seq) {
  if (s == t) return true;
  if (seq.empty()) return false;
  const size_t k = seq.size();
  std::vector<bool> seen(g.NumVertices() * k, false);
  std::function<bool(VertexId, size_t)> dfs = [&](VertexId v, size_t phase) {
    for (const auto& arc : g.OutArcs(v)) {
      if (arc.label != seq[phase]) continue;
      const size_t next = (phase + 1) % k;
      if (arc.vertex == t && next == 0) return true;
      if (!seen[arc.vertex * k + next]) {
        seen[arc.vertex * k + next] = true;
        if (dfs(arc.vertex, next)) return true;
      }
    }
    return false;
  };
  return dfs(s, 0);
}

TEST(KleeneSequenceTest, MinimumRepeat) {
  EXPECT_EQ(MinimumRepeat({0, 1, 0, 1}), (KleeneSequence{0, 1}));
  EXPECT_EQ(MinimumRepeat({2, 2, 2}), (KleeneSequence{2}));
  EXPECT_EQ(MinimumRepeat({0, 1, 2}), (KleeneSequence{0, 1, 2}));
  EXPECT_EQ(MinimumRepeat({0, 1, 0}), (KleeneSequence{0, 1, 0}));
  EXPECT_EQ(MinimumRepeat({}), (KleeneSequence{}));
}

TEST(KleeneSequenceTest, ToString) {
  const std::vector<std::string> names = {"a", "b"};
  EXPECT_EQ(KleeneSequenceToString({0, 1}, names), "(a·b)*");
  EXPECT_EQ(KleeneSequenceToString({1, 5}, names), "(b·5)*");
}

TEST(RlcProductBfsTest, Figure1PaperQuery) {
  // §4.2: Qr(L, B, (worksFor · friendOf)*) = true via
  // (L, worksFor, D, friendOf, H, worksFor, G, friendOf, B).
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  SearchWorkspace ws;
  EXPECT_TRUE(RlcProductBfsReachability(g, kL, kB,
                                        {kWorksFor, kFriendOf}, ws));
  // The reversed concatenation does not hold from L to B.
  EXPECT_FALSE(RlcProductBfsReachability(g, kL, kB,
                                         {kFriendOf, kWorksFor}, ws));
  // One-label concatenation: L reaches M under (worksFor)* via p1.
  EXPECT_TRUE(RlcProductBfsReachability(g, kL, kM, {kWorksFor}, ws));
}

TEST(RlcProductBfsTest, RepeatCountSemantics) {
  // 0 -a-> 1 -b-> 2 -a-> 3 -b-> 4.
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      5, 2, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}, {3, 4, 1}});
  SearchWorkspace ws;
  const KleeneSequence ab = {0, 1}, abab = {0, 1, 0, 1};
  EXPECT_TRUE(RlcProductBfsReachability(g, 0, 2, ab, ws));   // 1 repeat
  EXPECT_TRUE(RlcProductBfsReachability(g, 0, 4, ab, ws));   // 2 repeats
  EXPECT_FALSE(RlcProductBfsReachability(g, 0, 3, ab, ws));  // mid-repeat
  EXPECT_FALSE(RlcProductBfsReachability(g, 0, 1, ab, ws));
  // (abab)* is a strict subset of (ab)*: only even numbers of ab repeats.
  EXPECT_TRUE(RlcProductBfsReachability(g, 0, 4, abab, ws));
  EXPECT_FALSE(RlcProductBfsReachability(g, 0, 2, abab, ws));
}

TEST(RlcProductBfsTest, ZeroRepeatsAndEmptySequence) {
  const LabeledDigraph g = LabeledDigraph::FromEdges(2, 1, {{0, 1, 0}});
  SearchWorkspace ws;
  EXPECT_TRUE(RlcProductBfsReachability(g, 0, 0, {0}, ws));
  EXPECT_TRUE(RlcProductBfsReachability(g, 1, 1, {}, ws));
  EXPECT_FALSE(RlcProductBfsReachability(g, 0, 1, {}, ws));
}

TEST(RlcProductBfsTest, CyclesAllowUnboundedRepeats) {
  // Directed triangle labeled a, b, a... wait: labels a,b alternate needs
  // even cycle. Square: 0-a->1-b->2-a->3-b->0.
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      4, 2, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}, {3, 0, 1}});
  SearchWorkspace ws;
  const KleeneSequence ab = {0, 1};
  for (VertexId t : {0u, 2u}) {
    EXPECT_TRUE(RlcProductBfsReachability(g, 0, t, ab, ws)) << t;
  }
  EXPECT_FALSE(RlcProductBfsReachability(g, 0, 1, ab, ws));
  EXPECT_FALSE(RlcProductBfsReachability(g, 0, 3, ab, ws));
}

TEST(RlcIndexTest, IndexedTemplateMatchesBaseline) {
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  RlcIndex index;
  index.Build(g, {{kWorksFor, kFriendOf}, {kWorksFor}});
  EXPECT_TRUE(index.IsIndexed({kWorksFor, kFriendOf}));
  EXPECT_FALSE(index.IsIndexed({kFriendOf, kWorksFor}));
  EXPECT_TRUE(index.Query(kL, kB, {kWorksFor, kFriendOf}));
  EXPECT_TRUE(index.Query(kL, kM, {kWorksFor}));
  EXPECT_FALSE(index.Query(kA, kM, {kWorksFor}));
  // Unindexed sequences fall back to the online product BFS.
  EXPECT_FALSE(index.Query(kL, kB, {kFriendOf, kWorksFor}));
  EXPECT_TRUE(index.Query(kL, kH, {kWorksFor}));
}

class RlcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RlcPropertyTest, ProductBfsMatchesBruteForce) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(18, 80, 3, seed);
  SearchWorkspace ws;
  const std::vector<KleeneSequence> sequences = {
      {0}, {1}, {0, 1}, {1, 2}, {0, 1, 2}, {2, 2}};
  for (const auto& seq : sequences) {
    for (VertexId s = 0; s < g.NumVertices(); s += 2) {
      for (VertexId t = 0; t < g.NumVertices(); t += 2) {
        ASSERT_EQ(RlcProductBfsReachability(g, s, t, seq, ws),
                  BruteRlc(g, s, t, seq))
            << s << "->" << t << " seed " << seed;
      }
    }
  }
}

TEST_P(RlcPropertyTest, IndexMatchesBaselineOnAllPairs) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(20, 110, 3, seed);
  const std::vector<KleeneSequence> templates = {
      {0}, {0, 1}, {1, 2, 0}, {2, 2}};
  RlcIndex index;
  index.Build(g, templates);
  SearchWorkspace ws;
  for (const auto& seq : templates) {
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(index.Query(s, t, seq),
                  RlcProductBfsReachability(g, s, t, seq, ws))
            << s << "->" << t << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RlcPropertyTest,
                         ::testing::Values(171, 172, 173, 174));

TEST(RlcIndexTest, SizeAndTemplateAccounting) {
  const LabeledDigraph g = RandomLabeledDigraph(30, 120, 3, 5);
  RlcIndex index;
  index.Build(g, {{0, 1}, {2}});
  EXPECT_EQ(index.NumTemplates(), 2u);
  EXPECT_GT(index.IndexSizeBytes(), 0u);
  EXPECT_EQ(index.Name(), "rlc");
}

}  // namespace
}  // namespace reach
