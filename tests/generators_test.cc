#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/topological.h"

namespace reach {
namespace {

TEST(GeneratorsTest, RandomDigraphShape) {
  Digraph g = RandomDigraph(100, 400, /*seed=*/1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 400u);
}

TEST(GeneratorsTest, RandomDigraphDeterministic) {
  Digraph a = RandomDigraph(50, 200, 9);
  Digraph b = RandomDigraph(50, 200, 9);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(GeneratorsTest, RandomDigraphSeedsDiffer) {
  Digraph a = RandomDigraph(50, 200, 9);
  Digraph b = RandomDigraph(50, 200, 10);
  EXPECT_NE(a.Edges(), b.Edges());
}

TEST(GeneratorsTest, RandomDigraphHasNoSelfLoops) {
  Digraph g = RandomDigraph(40, 300, 3);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v));
  }
}

TEST(GeneratorsTest, RandomDagIsAcyclic) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(IsDag(RandomDag(100, 350, seed))) << seed;
  }
}

TEST(GeneratorsTest, RandomDagEdgeCount) {
  Digraph g = RandomDag(100, 350, 4);
  EXPECT_EQ(g.NumEdges(), 350u);
}

TEST(GeneratorsTest, ScaleFreeDagIsAcyclic) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    EXPECT_TRUE(IsDag(ScaleFreeDag(200, 3, seed))) << seed;
  }
}

TEST(GeneratorsTest, ScaleFreeDagDegreesAreSkewed) {
  Digraph g = ScaleFreeDag(500, 3, 7);
  size_t max_in = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  // Preferential attachment should create at least one clear hub.
  EXPECT_GE(max_in, 10u);
}

TEST(GeneratorsTest, RandomTreeHasNMinusOneEdges) {
  Digraph g = RandomTree(64, 2);
  EXPECT_EQ(g.NumEdges(), 63u);
  EXPECT_TRUE(IsDag(g));
  // Every non-root vertex has exactly one parent.
  EXPECT_EQ(g.InDegree(0), 0u);
  for (VertexId v = 1; v < 64; ++v) EXPECT_EQ(g.InDegree(v), 1u);
}

TEST(GeneratorsTest, LayeredDagShape) {
  Digraph g = LayeredDag(/*layers=*/5, /*width=*/10, /*out_degree=*/2, 3);
  EXPECT_EQ(g.NumVertices(), 50u);
  EXPECT_EQ(g.NumEdges(), 4u * 10u * 2u);
  EXPECT_TRUE(IsDag(g));
}

TEST(GeneratorsTest, ChainAndCycle) {
  EXPECT_TRUE(IsDag(Chain(8)));
  EXPECT_FALSE(IsDag(Cycle(8)));
  EXPECT_EQ(Chain(8).NumEdges(), 7u);
  EXPECT_EQ(Cycle(8).NumEdges(), 8u);
}

TEST(GeneratorsTest, UniformLabelsCoverAllLabels) {
  LabeledDigraph g =
      WithUniformLabels(RandomDigraph(100, 600, 5), /*num_labels=*/4, 6);
  EXPECT_EQ(g.NumLabels(), 4u);
  std::vector<size_t> counts(4, 0);
  for (const auto& e : g.Edges()) ++counts[e.label];
  for (Label l = 0; l < 4; ++l) EXPECT_GT(counts[l], 0u) << l;
}

TEST(GeneratorsTest, ZipfLabelsAreSkewed) {
  LabeledDigraph g = WithZipfLabels(RandomDigraph(200, 2000, 8),
                                    /*num_labels=*/8, /*skew=*/1.2, 6);
  std::vector<size_t> counts(8, 0);
  for (const auto& e : g.Edges()) ++counts[e.label];
  EXPECT_GT(counts[0], counts[7] * 2) << "label 0 should dominate label 7";
}

TEST(GeneratorsTest, LabeledGraphPreservesTopology) {
  Digraph base = RandomDigraph(60, 240, 8);
  LabeledDigraph g = WithUniformLabels(base, 3, 9);
  EXPECT_EQ(g.ProjectPlain().Edges(), base.Edges());
}

}  // namespace
}  // namespace reach
