#include "graph/scc.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace reach {
namespace {

// Brute-force mutual reachability via DFS, for cross-checking.
bool Reaches(const Digraph& g, VertexId s, VertexId t) {
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<VertexId> stack = {s};
  seen[s] = true;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    if (v == t) return true;
    for (VertexId w : g.OutNeighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

TEST(SccTest, SingleVertex) {
  Digraph g = Digraph::FromEdges(1, {});
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(SccTest, DagHasSingletonComponents) {
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 4u);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) {
      EXPECT_FALSE(scc.SameComponent(u, v));
    }
  }
}

TEST(SccTest, SingleCycleIsOneComponent) {
  Digraph g = Cycle(6);
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 1u);
  for (VertexId v = 1; v < 6; ++v) EXPECT_TRUE(scc.SameComponent(0, v));
}

TEST(SccTest, TwoCyclesJoinedByBridge) {
  // 0 <-> 1 -> 2 <-> 3
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}});
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_TRUE(scc.SameComponent(0, 1));
  EXPECT_TRUE(scc.SameComponent(2, 3));
  EXPECT_FALSE(scc.SameComponent(1, 2));
}

TEST(SccTest, ComponentIdsAreReverseTopological) {
  // Edge between components (A -> B) must satisfy id(A) > id(B).
  Digraph g = Digraph::FromEdges(
      6, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}, {3, 4}, {4, 5}, {5, 4}});
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 3u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.OutNeighbors(v)) {
      if (!scc.SameComponent(v, w)) {
        EXPECT_GT(scc.component_of[v], scc.component_of[w]);
      }
    }
  }
}

TEST(SccTest, DeepChainDoesNotOverflowStack) {
  // 200k-vertex chain: the iterative Tarjan must not recurse.
  Digraph g = Chain(200000);
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 200000u);
}

TEST(SccTest, DeepCycleIsOneComponent) {
  Digraph g = Cycle(200000);
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 1u);
}

class SccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SccPropertyTest, MatchesBruteForceMutualReachability) {
  const uint64_t seed = GetParam();
  Digraph g = RandomDigraph(40, 100 + (seed % 60), seed);
  SccDecomposition scc = ComputeScc(g);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const bool mutual = Reaches(g, u, v) && Reaches(g, v, u);
      EXPECT_EQ(scc.SameComponent(u, v), mutual)
          << "u=" << u << " v=" << v << " seed=" << seed;
    }
  }
}

TEST_P(SccPropertyTest, CrossComponentEdgesRespectReverseTopoIds) {
  const uint64_t seed = GetParam();
  Digraph g = RandomDigraph(60, 150, seed ^ 0xabcdef);
  SccDecomposition scc = ComputeScc(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.OutNeighbors(v)) {
      if (!scc.SameComponent(v, w)) {
        EXPECT_GT(scc.component_of[v], scc.component_of[w]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace reach
