#include "lcr/pruned_labeled_two_hop.h"

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "lcr/gtc_index.h"
#include "lcr/lcr_bfs.h"

namespace reach {
namespace {

TEST(PrunedLabeledTwoHopTest, Figure1RlcPrerequisitePath) {
  // The alternation relaxation of the §4.2 example: L reaches B using only
  // {worksFor, friendOf}.
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  PrunedLabeledTwoHop index;
  index.Build(g);
  EXPECT_TRUE(index.Query(kL, kB, MakeLabelSet({kWorksFor, kFriendOf})));
  EXPECT_FALSE(index.Query(kL, kB, MakeLabelSet({kWorksFor})));
  EXPECT_FALSE(index.Query(kL, kB, MakeLabelSet({kFriendOf})));
}

TEST(PrunedLabeledTwoHopTest, EntriesStayModestOnHubGraphs) {
  // The degree order puts the hub first, so spokes carry one entry per
  // direction instead of quadratic blowup.
  std::vector<LabeledEdge> edges;
  for (VertexId v = 1; v <= 30; ++v) edges.push_back({v, 0, 0});
  for (VertexId v = 31; v <= 60; ++v) edges.push_back({0, v, 1});
  const LabeledDigraph g = LabeledDigraph::FromEdges(61, 2, edges);
  PrunedLabeledTwoHop index;
  index.Build(g);
  EXPECT_LE(index.TotalEntries(), 2u * 61u);
  EXPECT_TRUE(index.Query(5, 40, MakeLabelSet({0, 1})));
  EXPECT_FALSE(index.Query(5, 40, MakeLabelSet({0})));
}

TEST(PrunedLabeledTwoHopTest, InsertEdgeBridgesComponents) {
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      4, 2, {{0, 1, 0}, {2, 3, 1}});
  PrunedLabeledTwoHop index;
  index.Build(g);
  EXPECT_FALSE(index.Query(0, 3, 0b11));
  const UpdateResult result =
      index.ApplyUpdate({LabeledEdgeUpdate::Insert(1, 2, 0)});
  EXPECT_EQ(result.status, UpdateStatus::kApplied);
  EXPECT_EQ(result.applied, 1u);
  EXPECT_TRUE(index.Query(0, 3, 0b11));
  EXPECT_FALSE(index.Query(0, 3, 0b01));  // still needs label 1 for 2->3
  EXPECT_TRUE(index.Query(0, 2, 0b01));
}

TEST(PrunedLabeledTwoHopTest, InsertParallelEdgeAddsCheaperSpls) {
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      2, 2, {{0, 1, 1}});
  PrunedLabeledTwoHop index;
  index.Build(g);
  EXPECT_FALSE(index.Query(0, 1, 0b01));
  // Parallel edge, different label.
  ASSERT_TRUE(index.ApplyUpdate({LabeledEdgeUpdate::Insert(0, 1, 0)}).ok());
  EXPECT_TRUE(index.Query(0, 1, 0b01));
  EXPECT_TRUE(index.Query(0, 1, 0b10));
}

TEST(PrunedLabeledTwoHopTest, InsertDuplicateEdgeIsNoop) {
  const LabeledDigraph g =
      LabeledDigraph::FromEdges(2, 2, {{0, 1, 0}});
  PrunedLabeledTwoHop index;
  index.Build(g);
  const size_t before = index.TotalEntries();
  const UpdateResult result =
      index.ApplyUpdate({LabeledEdgeUpdate::Insert(0, 1, 0)});
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.ignored, 1u);
  EXPECT_EQ(index.TotalEntries(), before);
}

class LabeledInsertStreamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabeledInsertStreamTest, IncrementalMatchesOracleAfterEveryBatch) {
  const uint64_t seed = GetParam();
  const VertexId n = 16;
  const Label num_labels = 3;
  Xoshiro256ss rng(seed);
  std::vector<LabeledEdge> edges =
      RandomLabeledDigraph(n, 26, num_labels, seed).Edges();
  PrunedLabeledTwoHop index;
  LabeledDigraph base = LabeledDigraph::FromEdges(n, num_labels, edges);
  index.Build(base);

  SearchWorkspace ws;
  for (int step = 0; step < 18; ++step) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    const Label l = static_cast<Label>(rng.NextBounded(num_labels));
    if (u == v) continue;
    ASSERT_TRUE(
        index.ApplyUpdate({LabeledEdgeUpdate::Insert(u, v, l)}).ok());
    edges.push_back({u, v, l});
    if (step % 6 != 5) continue;  // verify every 6th step (all-pairs scan)
    const LabeledDigraph current =
        LabeledDigraph::FromEdges(n, num_labels, edges);
    for (VertexId s = 0; s < n; ++s) {
      for (VertexId t = 0; t < n; ++t) {
        for (LabelSet mask = 0; mask < (1u << num_labels); ++mask) {
          ASSERT_EQ(index.Query(s, t, mask),
                    LcrBfsReachability(current, s, t, mask, ws))
              << s << "->" << t << " mask=" << mask << " step=" << step
              << " seed=" << seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabeledInsertStreamTest,
                         ::testing::Values(161, 162, 163, 164));

TEST(PrunedLabeledTwoHopTest, DeleteEdgeIncrementally) {
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      3, 2, {{0, 1, 0}, {1, 2, 1}});
  PrunedLabeledTwoHop index;
  index.Build(g);
  EXPECT_TRUE(index.Query(0, 2, 0b11));
  ASSERT_TRUE(index.ApplyUpdate({LabeledEdgeUpdate::Delete(1, 2, 1)}).ok());
  EXPECT_FALSE(index.Query(0, 2, 0b11));
  EXPECT_TRUE(index.Query(0, 1, 0b01));
  // Inserted edges survive unrelated deletions.
  ASSERT_TRUE(index.ApplyUpdate({LabeledEdgeUpdate::Insert(1, 2, 0)}).ok());
  EXPECT_TRUE(index.Query(0, 2, 0b01));
  ASSERT_TRUE(index.ApplyUpdate({LabeledEdgeUpdate::Delete(0, 1, 0)}).ok());
  EXPECT_FALSE(index.Query(0, 2, 0b01));
  EXPECT_TRUE(index.Query(1, 2, 0b01));
}

TEST(PrunedLabeledTwoHopTest, DeleteOnlySeversThatLabel) {
  // Parallel arcs 0->1 under labels 0 and 1: deleting the label-0 arc
  // must keep the label-1 route answering, and vice-versa queries that
  // allowed only label 0 must now fail.
  const LabeledDigraph g =
      LabeledDigraph::FromEdges(2, 2, {{0, 1, 0}, {0, 1, 1}});
  PrunedLabeledTwoHop index;
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate({LabeledEdgeUpdate::Delete(0, 1, 0)}).ok());
  EXPECT_FALSE(index.Query(0, 1, 0b01));
  EXPECT_TRUE(index.Query(0, 1, 0b10));
  EXPECT_TRUE(index.Query(0, 1, 0b11));
}

TEST(PrunedLabeledTwoHopTest, MixedBatchAndRebuildFromUpdates) {
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      4, 2, {{0, 1, 0}, {1, 2, 0}, {2, 3, 1}});
  PrunedLabeledTwoHop index;
  index.Build(g);
  // One batch: bypass 1 with a direct 0->2 arc, then cut 1->2. Order
  // matters — the insert lands before the delete is evaluated.
  const UpdateResult result = index.ApplyUpdate(
      {LabeledEdgeUpdate::Insert(0, 2, 0), LabeledEdgeUpdate::Delete(1, 2, 0)});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(index.Query(0, 3, 0b11));
  EXPECT_FALSE(index.Query(1, 3, 0b11));
  ASSERT_TRUE(index.RebuildFromUpdates());
  EXPECT_EQ(index.Damage(), 0u);
  EXPECT_TRUE(index.Query(0, 3, 0b11));
  EXPECT_FALSE(index.Query(1, 3, 0b11));
  EXPECT_TRUE(index.Query(0, 2, 0b01));
}

TEST(PrunedLabeledTwoHopTest, AgreesWithGtcOnSplsCoverage) {
  // P2H and GTC must answer identically even though they store different
  // structures (hop-split SPLSs vs per-pair SPLSs).
  const LabeledDigraph g = RandomLabeledDigraph(20, 80, 4, 99);
  PrunedLabeledTwoHop p2h;
  GtcIndex gtc;
  p2h.Build(g);
  gtc.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      for (LabelSet mask = 0; mask < 16; ++mask) {
        ASSERT_EQ(p2h.Query(s, t, mask), gtc.Query(s, t, mask))
            << s << "->" << t << " mask " << mask;
      }
    }
  }
}

}  // namespace
}  // namespace reach
