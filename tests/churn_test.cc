// Churn differential suite for the unified batched write API (ISSUE 10
// acceptance): random insert/delete mixes through `ApplyUpdate` on every
// deletion-capable index on the roster — pll, dagger, the fastpath
// wrapper, and the labeled 2-hop — cross-checked against a BFS oracle,
// with zero full rebuilds until the staleness budget recommends one and
// SCC split/merge transitions handled in place.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/index_factory.h"
#include "core/reachability_index.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "lcr/lcr_bfs.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "traversal/online_search.h"

namespace reach {
namespace {

// The deletion-capable plain roster, exercised through the factory so the
// test covers exactly what `MakeIndex` hands out (wrapper included).
const char* const kDecrementalSpecs[] = {"pll", "dagger", "pll:fastpath=1"};

class PlainChurnTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(PlainChurnTest, MixedBatchesMatchOracleWithoutEagerRebuilds) {
  const auto& [spec, seed] = GetParam();
  MadeIndex made = MakeIndex(spec);
  ASSERT_TRUE(made) << spec;
  ASSERT_TRUE(made.caps.decremental) << spec;
  auto* index = dynamic_cast<DynamicReachabilityIndex*>(made.plain.get());
  ASSERT_NE(index, nullptr) << spec;

  const VertexId n = 20;
  Xoshiro256ss rng(seed);
  std::vector<Edge> live = RandomDigraph(n, 34, seed).Edges();
  const Digraph base = Digraph::FromEdges(n, live);
  index->Build(base);

  size_t rebuilds = 0;
  size_t recommendations = 0;
  SearchWorkspace ws;
  for (int step = 0; step < 100; ++step) {
    // Compose a batch of 1-3 updates, mixing inserts and deletes.
    UpdateBatch batch;
    const size_t batch_size = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < batch_size; ++i) {
      const bool do_delete = !live.empty() && rng.NextBounded(10) < 3;
      if (do_delete) {
        const Edge e = live[rng.NextBounded(live.size())];
        batch.push_back(EdgeUpdate::Delete(e.source, e.target));
        std::erase(live, e);  // the API deletes the arc, not one copy
      } else {
        const auto u = static_cast<VertexId>(rng.NextBounded(n));
        const auto v = static_cast<VertexId>(rng.NextBounded(n));
        if (u == v) continue;
        batch.push_back(EdgeUpdate::Insert(u, v));
        if (std::find(live.begin(), live.end(), Edge{u, v}) == live.end()) {
          live.push_back({u, v});
        }
      }
    }
    if (batch.empty()) continue;

    const UpdateResult result = index->ApplyUpdate(batch);
    // The UpdateResult contract: accepted batches are kApplied or
    // kDeferredRebuild (advisory), never silently dropped.
    ASSERT_TRUE(result.ok()) << spec << " step " << step << ": "
                             << result.reason;
    ASSERT_EQ(result.applied + result.ignored, batch.size())
        << spec << " step " << step;
    if (result.rebuild_recommended) {
      ASSERT_EQ(result.status, UpdateStatus::kDeferredRebuild);
      ++recommendations;
      ASSERT_TRUE(index->RebuildFromUpdates()) << spec << " step " << step;
      ++rebuilds;
    } else {
      ASSERT_EQ(result.status, UpdateStatus::kApplied);
    }

    if (step % 5 != 4) continue;
    const Digraph truth = Digraph::FromEdges(n, live);
    for (VertexId s = 0; s < n; ++s) {
      for (VertexId t = 0; t < n; ++t) {
        ASSERT_EQ(made.plain->Query(s, t), BfsReachability(truth, s, t, ws))
            << spec << " step " << step << ": " << s << "->" << t;
      }
    }
  }
  // The acceptance bar: every rebuild was threshold-driven — none
  // happened before the budget recommended it.
  EXPECT_EQ(rebuilds, recommendations) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Roster, PlainChurnTest,
    ::testing::Combine(::testing::ValuesIn(kDecrementalSpecs),
                       ::testing::Values(811u, 812u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_" + std::to_string(std::get<1>(info.param));
    });

class SccChurnTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SccChurnTest, SplitAndMergeStayExact) {
  // 0 -> 1 -> 2 -> 3 -> 1 (cycle {1,2,3}) -> 4. Deleting 3->1 splits the
  // SCC into singletons; re-inserting merges it back. Both transitions
  // must be absorbed without a Build.
  MadeIndex made = MakeIndex(GetParam());
  ASSERT_TRUE(made);
  auto* index = dynamic_cast<DynamicReachabilityIndex*>(made.plain.get());
  ASSERT_NE(index, nullptr);
  const Digraph g =
      Digraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 1}, {3, 4}});
  index->Build(g);
  EXPECT_TRUE(made.plain->Query(3, 1));
  EXPECT_TRUE(made.plain->Query(2, 1));

  ASSERT_TRUE(index->ApplyUpdate({EdgeUpdate::Delete(3, 1)}).ok());
  EXPECT_FALSE(made.plain->Query(3, 1));  // SCC split
  EXPECT_FALSE(made.plain->Query(2, 1));
  EXPECT_TRUE(made.plain->Query(1, 3));   // the forward chain survives
  EXPECT_TRUE(made.plain->Query(0, 4));

  ASSERT_TRUE(index->ApplyUpdate({EdgeUpdate::Insert(3, 1)}).ok());
  EXPECT_TRUE(made.plain->Query(3, 1));   // merged back
  EXPECT_TRUE(made.plain->Query(2, 1));
  EXPECT_TRUE(made.plain->Query(0, 4));
}

INSTANTIATE_TEST_SUITE_P(Roster, SccChurnTest,
                         ::testing::ValuesIn(kDecrementalSpecs),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(StalenessPolicyTest, SpecParameterDrivesTheRebuildThreshold) {
  // `staleness=1` through the factory: the second damaging delete must
  // push the index over its budget and flip the status to
  // kDeferredRebuild, while answers stay exact throughout.
  MadeIndex made = MakeIndex("pll:staleness=1");
  ASSERT_TRUE(made);
  auto* index = dynamic_cast<DynamicReachabilityIndex*>(made.plain.get());
  ASSERT_NE(index, nullptr);
  const Digraph g = Chain(8);
  index->Build(g);

  ASSERT_EQ(index->ApplyUpdate({EdgeUpdate::Delete(1, 2)}).status,
            UpdateStatus::kApplied);
  const UpdateResult over = index->ApplyUpdate({EdgeUpdate::Delete(5, 6)});
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(over.status, UpdateStatus::kDeferredRebuild);
  EXPECT_TRUE(over.rebuild_recommended);
  EXPECT_FALSE(made.plain->Query(0, 7));
  EXPECT_TRUE(made.plain->Query(2, 5));
  ASSERT_TRUE(index->RebuildFromUpdates());
  EXPECT_FALSE(made.plain->Query(0, 7));
  EXPECT_TRUE(made.plain->Query(2, 5));
}

class LcrChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LcrChurnTest, LabeledMixedBatchesMatchOracle) {
  const uint64_t seed = GetParam();
  const VertexId n = 12;
  const Label num_labels = 2;
  Xoshiro256ss rng(seed);
  std::vector<LabeledEdge> live =
      RandomLabeledDigraph(n, 20, num_labels, seed).Edges();
  PrunedLabeledTwoHop index;
  const LabeledDigraph base =
      LabeledDigraph::FromEdges(n, num_labels, live);
  index.Build(base);

  SearchWorkspace ws;
  for (int step = 0; step < 60; ++step) {
    LabeledUpdateBatch batch;
    const bool do_delete = !live.empty() && rng.NextBounded(10) < 3;
    if (do_delete) {
      const LabeledEdge e = live[rng.NextBounded(live.size())];
      batch.push_back(LabeledEdgeUpdate::Delete(e.source, e.target, e.label));
      std::erase(live, e);
    } else {
      const auto u = static_cast<VertexId>(rng.NextBounded(n));
      const auto v = static_cast<VertexId>(rng.NextBounded(n));
      const auto l = static_cast<Label>(rng.NextBounded(num_labels));
      if (u == v) continue;
      batch.push_back(LabeledEdgeUpdate::Insert(u, v, l));
      if (std::find(live.begin(), live.end(), LabeledEdge{u, v, l}) ==
          live.end()) {
        live.push_back({u, v, l});
      }
    }
    const UpdateResult result = index.ApplyUpdate(batch);
    ASSERT_TRUE(result.ok()) << "step " << step << ": " << result.reason;
    if (result.rebuild_recommended) {
      ASSERT_TRUE(index.RebuildFromUpdates());
    }

    if (step % 6 != 5) continue;
    const LabeledDigraph truth =
        LabeledDigraph::FromEdges(n, num_labels, live);
    for (VertexId s = 0; s < n; ++s) {
      for (VertexId t = 0; t < n; ++t) {
        for (LabelSet mask = 1; mask < (1u << num_labels); ++mask) {
          ASSERT_EQ(index.Query(s, t, mask),
                    LcrBfsReachability(truth, s, t, mask, ws))
              << s << "->" << t << " mask=" << mask << " step=" << step
              << " seed=" << seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcrChurnTest,
                         ::testing::Values(911, 912, 913));

}  // namespace
}  // namespace reach
