#include "core/scc_condensing_index.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "plain/tree_cover.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(SccCondensingIndexTest, SameSccShortCircuits) {
  const Digraph g = Cycle(6);
  SccCondensingIndex index(std::make_unique<TreeCover>());
  index.Build(g);
  for (VertexId s = 0; s < 6; ++s) {
    for (VertexId t = 0; t < 6; ++t) EXPECT_TRUE(index.Query(s, t));
  }
  // The inner DAG index saw a single vertex.
  EXPECT_EQ(index.condensation().dag.NumVertices(), 1u);
}

TEST(SccCondensingIndexTest, NamePrefixesInner) {
  SccCondensingIndex index(std::make_unique<TreeCover>());
  const Digraph g = Chain(3);
  index.Build(g);
  EXPECT_EQ(index.Name(), "scc+treecover");
  EXPECT_TRUE(index.IsComplete());
}

TEST(SccCondensingIndexTest, SizeIncludesComponentMap) {
  const Digraph g = Chain(100);
  SccCondensingIndex index(std::make_unique<TreeCover>());
  index.Build(g);
  TreeCover bare;
  bare.Build(g);
  EXPECT_EQ(index.IndexSizeBytes(),
            bare.IndexSizeBytes() + 100 * sizeof(VertexId));
}

TEST(SccCondensingIndexTest, MakeCondensingHelper) {
  auto index = MakeCondensing<TreeCover>();
  const Digraph g = RandomDigraph(30, 90, 5);
  index->Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(index->Query(s, t), oracle.Query(s, t));
    }
  }
}

TEST(SccCondensingIndexTest, MixedSccSizes) {
  // Two 3-cycles bridged by a chain, plus an isolated vertex.
  const Digraph g = Digraph::FromEdges(
      8, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 4}});
  SccCondensingIndex index(std::make_unique<TreeCover>());
  index.Build(g);
  EXPECT_TRUE(index.Query(0, 6));
  EXPECT_TRUE(index.Query(6, 4));
  EXPECT_FALSE(index.Query(4, 0));
  EXPECT_FALSE(index.Query(7, 0));
  EXPECT_TRUE(index.Query(7, 7));
  EXPECT_EQ(index.condensation().dag.NumVertices(), 4u);
}

}  // namespace
}  // namespace reach
