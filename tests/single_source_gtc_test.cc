#include "lcr/single_source_gtc.h"

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"

namespace reach {
namespace {

// Brute-force minimal SPLSs by exhaustive (mask, vertex) state BFS.
std::vector<MinimalLabelSets> BruteGtc(const LabeledDigraph& g,
                                       VertexId source) {
  const size_t n = g.NumVertices();
  std::vector<std::vector<bool>> state(n);
  const size_t num_masks = size_t{1} << g.NumLabels();
  for (auto& s : state) s.assign(num_masks, false);
  std::vector<std::pair<VertexId, LabelSet>> queue = {{source, 0}};
  state[source][0] = true;
  for (size_t head = 0; head < queue.size(); ++head) {
    auto [v, mask] = queue[head];
    for (const auto& arc : g.OutArcs(v)) {
      const LabelSet next = mask | LabelBit(arc.label);
      if (!state[arc.vertex][next]) {
        state[arc.vertex][next] = true;
        queue.push_back({arc.vertex, next});
      }
    }
  }
  std::vector<MinimalLabelSets> result(n);
  for (VertexId v = 0; v < n; ++v) {
    for (LabelSet m = 0; m < num_masks; ++m) {
      if (state[v][m]) result[v].AddIfMinimal(m);
    }
  }
  return result;
}

void ExpectSameAntichains(const std::vector<MinimalLabelSets>& a,
                          const std::vector<MinimalLabelSets>& b,
                          const std::string& context) {
  ASSERT_EQ(a.size(), b.size());
  for (VertexId v = 0; v < a.size(); ++v) {
    std::vector<LabelSet> sa = a[v].sets(), sb = b[v].sets();
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(sa, sb) << context << " vertex " << v;
  }
}

TEST(SingleSourceGtcTest, Figure1WorkedExamples) {
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  const auto from_l = SingleSourceGtc(g, kL);
  // §4.1: the SPLS from L to M is {worksFor} (p1 dominates p2).
  ASSERT_EQ(from_l[kM].sets().size(), 1u);
  EXPECT_EQ(from_l[kM].sets()[0], MakeLabelSet({kWorksFor}));
  // §4.1.2: L reaches H with the single minimal SPLS {worksFor} (p3); the
  // two-label p4 = (L, worksFor, D, friendOf, H) is ignored.
  ASSERT_EQ(from_l[kH].sets().size(), 1u);
  EXPECT_EQ(from_l[kH].sets()[0], MakeLabelSet({kWorksFor}));

  const auto from_a = SingleSourceGtc(g, kA);
  // §4.1: SPLS(A, L) = {follows}; SPLS(A, M) = {follows, worksFor}
  // (cross-product transitivity of SPLSs).
  ASSERT_EQ(from_a[kL].sets().size(), 1u);
  EXPECT_EQ(from_a[kL].sets()[0], MakeLabelSet({kFollows}));
  ASSERT_EQ(from_a[kM].sets().size(), 1u);
  EXPECT_EQ(from_a[kM].sets()[0], MakeLabelSet({kFollows, kWorksFor}));
}

TEST(SingleSourceGtcTest, SourceHasEmptySet) {
  const LabeledDigraph g = figure1::LabeledGraph();
  const auto gtc = SingleSourceGtc(g, figure1::kA);
  ASSERT_EQ(gtc[figure1::kA].sets().size(), 1u);
  EXPECT_EQ(gtc[figure1::kA].sets()[0], 0u);
}

TEST(SingleSourceGtcTest, UnreachableVerticesHaveNoSets) {
  const LabeledDigraph g = figure1::LabeledGraph();
  const auto from_g = SingleSourceGtc(g, figure1::kG);
  EXPECT_TRUE(from_g[figure1::kA].empty());
  EXPECT_TRUE(from_g[figure1::kL].empty());
  EXPECT_FALSE(from_g[figure1::kB].empty());
}

TEST(SingleSourceGtcTest, CycleAccumulatesAllLabelsOnItsPath) {
  // 0 -a-> 1 -b-> 2 -c-> 0: from 0, SPLS(1) = {a}, SPLS(2) = {a,b}.
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      3, 3, {{0, 1, 0}, {1, 2, 1}, {2, 0, 2}});
  const auto gtc = SingleSourceGtc(g, 0);
  EXPECT_EQ(gtc[1].sets(), (std::vector<LabelSet>{0b001}));
  EXPECT_EQ(gtc[2].sets(), (std::vector<LabelSet>{0b011}));
  EXPECT_EQ(gtc[0].sets(), (std::vector<LabelSet>{0}));  // empty path wins
}

TEST(SingleSourceGtcTest, ParallelEdgesGiveAlternativeSets) {
  const LabeledDigraph g =
      LabeledDigraph::FromEdges(2, 2, {{0, 1, 0}, {0, 1, 1}});
  const auto gtc = SingleSourceGtc(g, 0);
  std::vector<LabelSet> sets = gtc[1].sets();
  std::sort(sets.begin(), sets.end());
  EXPECT_EQ(sets, (std::vector<LabelSet>{0b01, 0b10}));
}

class GtcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GtcPropertyTest, MatchesBruteForceOnRandomGraphs) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(24, 90, 4, seed);
  for (VertexId source = 0; source < g.NumVertices(); source += 3) {
    ExpectSameAntichains(SingleSourceGtc(g, source), BruteGtc(g, source),
                         "seed=" + std::to_string(seed) + " source=" +
                             std::to_string(source));
  }
}

TEST_P(GtcPropertyTest, SingleTargetIsSingleSourceOnReverse) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(20, 70, 3, seed);
  // Reverse the graph manually and compare.
  std::vector<LabeledEdge> reversed;
  for (const auto& e : g.Edges()) reversed.push_back({e.target, e.source, e.label});
  const LabeledDigraph rg = LabeledDigraph::FromEdges(
      static_cast<VertexId>(g.NumVertices()), g.NumLabels(), reversed);
  for (VertexId target = 0; target < g.NumVertices(); target += 4) {
    ExpectSameAntichains(SingleTargetGtc(g, target),
                         SingleSourceGtc(rg, target), "target");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtcPropertyTest,
                         ::testing::Values(151, 152, 153, 154, 155));

}  // namespace
}  // namespace reach
