#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "plain/auto_index.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(GraphStatsTest, ChainStats) {
  const GraphStats s = ComputeGraphStats(Chain(10));
  EXPECT_EQ(s.num_vertices, 10u);
  EXPECT_EQ(s.num_edges, 9u);
  EXPECT_TRUE(s.is_dag);
  EXPECT_EQ(s.num_sccs, 10u);
  EXPECT_EQ(s.largest_scc, 1u);
  EXPECT_EQ(s.condensation_depth, 10u);
  EXPECT_EQ(s.num_sources, 1u);
  EXPECT_EQ(s.num_sinks, 1u);
}

TEST(GraphStatsTest, CycleStats) {
  const GraphStats s = ComputeGraphStats(Cycle(8));
  EXPECT_FALSE(s.is_dag);
  EXPECT_EQ(s.num_sccs, 1u);
  EXPECT_EQ(s.largest_scc, 8u);
  EXPECT_EQ(s.condensation_depth, 1u);
  // Everything reaches everything.
  EXPECT_DOUBLE_EQ(s.reachability_density, 1.0);
}

TEST(GraphStatsTest, EmptyGraph) {
  const GraphStats s = ComputeGraphStats(Digraph::FromEdges(0, {}));
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.condensation_depth, 0u);
}

TEST(GraphStatsTest, DensityIsInUnitInterval) {
  const GraphStats s = ComputeGraphStats(RandomDigraph(200, 800, 3));
  EXPECT_GT(s.reachability_density, 0.0);
  EXPECT_LE(s.reachability_density, 1.0);
}

TEST(GraphStatsTest, ToStringMentionsKeyFacts) {
  const std::string text = GraphStatsToString(ComputeGraphStats(Chain(5)));
  EXPECT_NE(text.find("vertices: 5"), std::string::npos);
  EXPECT_NE(text.find("DAG"), std::string::npos);
}

TEST(AutoIndexTest, PicksTreeCoverForTrees) {
  const Digraph g = RandomTree(500, 3);
  AutoIndex index;
  index.Build(g);
  EXPECT_EQ(index.choice().spec, "treecover");
  EXPECT_NE(index.Name().find("treecover"), std::string::npos);
}

TEST(AutoIndexTest, PicksPllForSmallGraphs) {
  const Digraph g = RandomDigraph(500, 2500, 4);
  AutoIndex index;
  index.Build(g);
  EXPECT_EQ(index.choice().spec, "pll");
}

TEST(AutoIndexTest, PicksPartialIndexForLargeGraphs) {
  const Digraph g = RandomDag(20000, 80000, 5);
  AutoIndex index;
  index.Build(g);
  EXPECT_TRUE(index.choice().spec == "bfl" ||
              index.choice().spec == "grail")
      << index.choice().spec;
  EXPECT_FALSE(index.IsComplete());
  EXPECT_FALSE(index.choice().rationale.empty());
}

TEST(AutoIndexTest, WhateverItPicksIsExact) {
  for (uint64_t seed : {61, 62}) {
    const Digraph g = RandomDigraph(48, 150, seed);
    AutoIndex index;
    index.Build(g);
    TransitiveClosure oracle;
    oracle.Build(g);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(index.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
      }
    }
  }
}

}  // namespace
}  // namespace reach
