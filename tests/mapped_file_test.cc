// MappedFile suite (core/mapped_file.h): mmap vs buffered-read parity,
// the forced kRead mode, and — in REACH_FAILPOINTS builds — injected
// open/mmap/read failures exercising the EINTR-retry and short-read
// accumulation paths that only misbehaving filesystems hit organically.

#include "core/mapped_file.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"

namespace reach {
namespace {

std::string WriteTempFile(const std::string& name,
                          const std::vector<uint8_t>& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good());
  return path;
}

std::vector<uint8_t> PatternBytes(size_t n) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>((i * 131) ^ (i >> 8));
  }
  return bytes;
}

class MappedFileTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

TEST_F(MappedFileTest, ReadModeMatchesMappedBytes) {
  const std::vector<uint8_t> bytes = PatternBytes(100000);
  const std::string path = WriteTempFile("mf_parity.bin", bytes);

  std::string error;
  const auto mapped = MappedFile::Open(path, &error, MappedFile::Mode::kAuto);
  ASSERT_NE(mapped, nullptr) << error;
  const auto buffered =
      MappedFile::Open(path, &error, MappedFile::Mode::kRead);
  ASSERT_NE(buffered, nullptr) << error;

  EXPECT_FALSE(buffered->IsMapped());  // kRead never mmaps
  ASSERT_EQ(mapped->size(), bytes.size());
  ASSERT_EQ(buffered->size(), bytes.size());
  EXPECT_EQ(0, std::memcmp(mapped->data(), bytes.data(), bytes.size()));
  EXPECT_EQ(0, std::memcmp(buffered->data(), bytes.data(), bytes.size()));
}

TEST_F(MappedFileTest, EmptyFileIsAValidZeroByteView) {
  const std::string path = WriteTempFile("mf_empty.bin", {});
  std::string error;
  for (const auto mode :
       {MappedFile::Mode::kAuto, MappedFile::Mode::kRead}) {
    const auto file = MappedFile::Open(path, &error, mode);
    ASSERT_NE(file, nullptr) << error;
    EXPECT_EQ(file->size(), 0u);
  }
}

TEST_F(MappedFileTest, MissingFileFailsWithReason) {
  std::string error;
  const auto file =
      MappedFile::Open(::testing::TempDir() + "mf_does_not_exist.bin", &error);
  EXPECT_EQ(file, nullptr);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// Failpoint-driven paths: require the macro sites to be compiled in.

TEST_F(MappedFileTest, InjectedMmapFailureFallsBackToBufferedRead) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const std::vector<uint8_t> bytes = PatternBytes(4096);
  const std::string path = WriteTempFile("mf_mmap_fail.bin", bytes);
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm("mapped_file.mmap", "error",
                                              &error))
      << error;
  const auto file = MappedFile::Open(path, &error);
  ASSERT_NE(file, nullptr) << error;
  EXPECT_FALSE(file->IsMapped());  // fallback took over transparently
  ASSERT_EQ(file->size(), bytes.size());
  EXPECT_EQ(0, std::memcmp(file->data(), bytes.data(), bytes.size()));
}

TEST_F(MappedFileTest, ShortReadsAccumulateToTheFullFile) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const std::vector<uint8_t> bytes = PatternBytes(10000);
  const std::string path = WriteTempFile("mf_short.bin", bytes);
  std::string error;
  // Every read returns at most 97 bytes: the loop must stitch ~104 of
  // them back into a byte-identical buffer.
  ASSERT_TRUE(FailpointRegistry::Global().Arm("mapped_file.read",
                                              "partial(bytes=97)", &error))
      << error;
  const auto file =
      MappedFile::Open(path, &error, MappedFile::Mode::kRead);
  ASSERT_NE(file, nullptr) << error;
  ASSERT_EQ(file->size(), bytes.size());
  EXPECT_EQ(0, std::memcmp(file->data(), bytes.data(), bytes.size()));
}

TEST_F(MappedFileTest, EintrIsRetriedNotFatal) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const std::vector<uint8_t> bytes = PatternBytes(8192);
  const std::string path = WriteTempFile("mf_eintr.bin", bytes);
  std::string error;
  // The first five reads are interrupted; the retries must still land the
  // whole file.
  ASSERT_TRUE(FailpointRegistry::Global().Arm("mapped_file.read",
                                              "eintr(times=5)", &error))
      << error;
  const auto file =
      MappedFile::Open(path, &error, MappedFile::Mode::kRead);
  ASSERT_NE(file, nullptr) << error;
  ASSERT_EQ(file->size(), bytes.size());
  EXPECT_EQ(0, std::memcmp(file->data(), bytes.data(), bytes.size()));
  EXPECT_GE(FailpointRegistry::Global().HitCount("mapped_file.read"), 5u);
}

TEST_F(MappedFileTest, InjectedReadErrorFailsCleanly) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const std::vector<uint8_t> bytes = PatternBytes(512);
  const std::string path = WriteTempFile("mf_readerr.bin", bytes);
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm("mapped_file.read", "error",
                                              &error))
      << error;
  const auto file =
      MappedFile::Open(path, &error, MappedFile::Mode::kRead);
  EXPECT_EQ(file, nullptr);
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
}

TEST_F(MappedFileTest, InjectedOpenErrorFailsCleanly) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const std::vector<uint8_t> bytes = PatternBytes(16);
  const std::string path = WriteTempFile("mf_openerr.bin", bytes);
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm("mapped_file.open", "error",
                                              &error))
      << error;
  EXPECT_EQ(MappedFile::Open(path, &error), nullptr);
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
}

}  // namespace
}  // namespace reach
