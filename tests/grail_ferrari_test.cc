#include <gtest/gtest.h>

#include "graph/generators.h"
#include "plain/ferrari.h"
#include "plain/grail.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

class GrailPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GrailPropertyTest, FilterHasNoFalseNegatives) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(60, 200, seed);
  Grail index(/*k=*/2, seed);
  index.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      if (oracle.Query(s, t)) {
        EXPECT_TRUE(index.MaybeReachable(s, t))
            << "false negative " << s << "->" << t;
      }
    }
  }
}

TEST_P(GrailPropertyTest, MoreTraversalsNeverWeakenTheFilter) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(50, 160, seed);
  Grail k1(1, 7), k5(5, 7);
  k1.Build(g);
  k5.Build(g);
  size_t rejected_k1 = 0, rejected_k5 = 0;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      rejected_k1 += !k1.MaybeReachable(s, t);
      rejected_k5 += !k5.MaybeReachable(s, t);
    }
  }
  // k=5 contains traversal seeds different from k=1's single tree, but
  // statistically the filter must reject at least as much as k=1 minus
  // noise; assert the weaker invariant that it rejects a majority of the
  // unreachable pairs.
  TransitiveClosure oracle;
  oracle.Build(g);
  size_t unreachable = 0;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      unreachable += !oracle.Query(s, t);
    }
  }
  EXPECT_GT(rejected_k5, unreachable / 2);
  EXPECT_GT(rejected_k1, 0u);
}

TEST_P(GrailPropertyTest, ExactAfterGuidedSearch) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(48, 150, seed ^ 0xaa);
  Grail index(3, seed);
  index.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrailPropertyTest,
                         ::testing::Values(71, 72, 73, 74));

TEST(GrailTest, RejectionCounterAdvances) {
  const Digraph g = Chain(10);
  Grail index(2, 1);
  index.Build(g);
  EXPECT_FALSE(index.Query(9, 0));
  EXPECT_GE(index.label_only_rejections(), 1u);
}

TEST(GrailTest, IndexSizeIsLinearInKAndV) {
  const Digraph g = RandomDag(100, 300, 5);
  Grail k2(2, 1), k4(4, 1);
  k2.Build(g);
  k4.Build(g);
  EXPECT_EQ(k4.IndexSizeBytes(), 2 * k2.IndexSizeBytes());
}

class FerrariPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FerrariPropertyTest, ExactForEveryBudget) {
  const size_t k = GetParam();
  for (uint64_t seed : {81, 82}) {
    const Digraph g = RandomDag(48, 160, seed);
    Ferrari index(k);
    index.Build(g);
    TransitiveClosure oracle;
    oracle.Build(g);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
            << "k=" << k << " " << s << "->" << t;
      }
    }
  }
}

TEST_P(FerrariPropertyTest, BudgetIsRespected) {
  const size_t k = GetParam();
  const Digraph g = RandomDag(80, 400, 9);
  Ferrari index(k);
  index.Build(g);
  EXPECT_LE(index.TotalIntervals(), k * g.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(Budgets, FerrariPropertyTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(FerrariTest, LargeBudgetDegeneratesToExactTreeCover) {
  const Digraph g = RandomDag(40, 120, 4);
  Ferrari index(/*k=*/1000000);
  index.Build(g);
  EXPECT_DOUBLE_EQ(index.ExactFraction(), 1.0);
}

TEST(FerrariTest, TightBudgetForcesApproximation) {
  const Digraph g = RandomDag(80, 480, 4);
  Ferrari index(/*k=*/1);
  index.Build(g);
  EXPECT_LT(index.ExactFraction(), 1.0);
}

TEST(FerrariTest, SmallerBudgetSmallerIndex) {
  const Digraph g = RandomDag(100, 500, 6);
  Ferrari k1(1), k8(8);
  k1.Build(g);
  k8.Build(g);
  EXPECT_LE(k1.TotalIntervals(), k8.TotalIntervals());
}

}  // namespace
}  // namespace reach
