#include "core/dynamic_bitset.h"

#include <gtest/gtest.h>

namespace reach {
namespace {

TEST(DynamicBitsetTest, StartsClear) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.Test(i));
  EXPECT_EQ(b.Count(), 0u);
}

TEST(DynamicBitsetTest, SetResetTest) {
  DynamicBitset b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(DynamicBitsetTest, Clear) {
  DynamicBitset b(128);
  for (size_t i = 0; i < 128; i += 3) b.Set(i);
  b.Clear();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(DynamicBitsetTest, UnionWithReportsChange) {
  DynamicBitset a(80), b(80);
  b.Set(5);
  b.Set(77);
  EXPECT_TRUE(a.UnionWith(b));
  EXPECT_TRUE(a.Test(5));
  EXPECT_TRUE(a.Test(77));
  EXPECT_FALSE(a.UnionWith(b));  // no new bits
}

TEST(DynamicBitsetTest, IsSubsetOf) {
  DynamicBitset a(130), b(130);
  a.Set(1);
  a.Set(129);
  b.Set(1);
  b.Set(129);
  b.Set(64);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  a.Set(2);
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(DynamicBitsetTest, EmptySetIsSubsetOfAll) {
  DynamicBitset empty(64), b(64);
  b.Set(3);
  EXPECT_TRUE(empty.IsSubsetOf(b));
  EXPECT_TRUE(empty.IsSubsetOf(empty));
}

TEST(DynamicBitsetTest, Equality) {
  DynamicBitset a(64), b(64);
  a.Set(10);
  b.Set(10);
  EXPECT_EQ(a, b);
  b.Set(11);
  EXPECT_NE(a, b);
}

TEST(DynamicBitsetTest, MemoryBytesRoundsUpToWords) {
  EXPECT_EQ(DynamicBitset(1).MemoryBytes(), 8u);
  EXPECT_EQ(DynamicBitset(64).MemoryBytes(), 8u);
  EXPECT_EQ(DynamicBitset(65).MemoryBytes(), 16u);
}

}  // namespace
}  // namespace reach
