#include "graph/topological.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace reach {
namespace {

TEST(TopologicalTest, OrderRespectsEdges) {
  Digraph g = Digraph::FromEdges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.has_value());
  auto rank = RankOf(*order);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.OutNeighbors(v)) EXPECT_LT(rank[v], rank[w]);
  }
}

TEST(TopologicalTest, CycleReturnsNullopt) {
  EXPECT_FALSE(TopologicalOrder(Cycle(4)).has_value());
  EXPECT_FALSE(IsDag(Cycle(4)));
}

TEST(TopologicalTest, ChainIsDag) {
  EXPECT_TRUE(IsDag(Chain(10)));
}

TEST(TopologicalTest, ReverseTiesGivesDifferentButValidOrder) {
  // Diamond: both orders valid, tie-breaking differs on the middle layer.
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto a = TopologicalOrder(g);
  auto b = TopologicalOrderReverseTies(g);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  auto rank = RankOf(*b);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.OutNeighbors(v)) EXPECT_LT(rank[v], rank[w]);
  }
}

TEST(TopologicalTest, RankOfIsInverse) {
  Digraph g = RandomDag(50, 120, /*seed=*/5);
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.has_value());
  auto rank = RankOf(*order);
  for (VertexId i = 0; i < order->size(); ++i) {
    EXPECT_EQ(rank[(*order)[i]], i);
  }
}

TEST(TopologicalTest, ForwardLevelsOnChain) {
  auto level = ForwardLevels(Chain(5));
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(level[v], v);
}

TEST(TopologicalTest, BackwardLevelsOnChain) {
  auto level = BackwardLevels(Chain(5));
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(level[v], 4 - v);
}

TEST(TopologicalTest, ForwardLevelIsLongestPath) {
  // 0->1->2->4 and 0->3->4: level(4) must be 3 (via the longer path).
  Digraph g = Digraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 4}, {0, 3}, {3, 4}});
  auto level = ForwardLevels(g);
  EXPECT_EQ(level[0], 0u);
  EXPECT_EQ(level[4], 3u);
}

class TopoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopoPropertyTest, RandomDagsAreDags) {
  Digraph g = RandomDag(120, 400, GetParam());
  EXPECT_TRUE(IsDag(g));
}

TEST_P(TopoPropertyTest, LevelsIncreaseAlongEdges) {
  Digraph g = RandomDag(100, 300, GetParam() ^ 0x77);
  auto fwd = ForwardLevels(g);
  auto bwd = BackwardLevels(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.OutNeighbors(v)) {
      EXPECT_LT(fwd[v], fwd[w]);
      EXPECT_GT(bwd[v], bwd[w]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopoPropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace reach
