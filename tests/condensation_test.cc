#include "graph/condensation.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/topological.h"

namespace reach {
namespace {

TEST(CondensationTest, DagIsUnchangedUpToRelabeling) {
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Condensation c = Condense(g);
  EXPECT_EQ(c.dag.NumVertices(), 4u);
  EXPECT_EQ(c.dag.NumEdges(), 3u);
  EXPECT_TRUE(IsDag(c.dag));
}

TEST(CondensationTest, CycleCollapsesToSingleVertex) {
  Condensation c = Condense(Cycle(10));
  EXPECT_EQ(c.dag.NumVertices(), 1u);
  EXPECT_EQ(c.dag.NumEdges(), 0u);  // internal edges dropped
}

TEST(CondensationTest, FigureEightCollapses) {
  // Two cycles sharing vertex 0 form one SCC.
  Digraph g =
      Digraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}});
  Condensation c = Condense(g);
  EXPECT_EQ(c.dag.NumVertices(), 1u);
}

TEST(CondensationTest, MultiEdgesBetweenComponentsDeduplicated) {
  // SCC {0,1} has two edges into SCC {2,3}.
  Digraph g = Digraph::FromEdges(
      4, {{0, 1}, {1, 0}, {0, 2}, {1, 3}, {2, 3}, {3, 2}});
  Condensation c = Condense(g);
  EXPECT_EQ(c.dag.NumVertices(), 2u);
  EXPECT_EQ(c.dag.NumEdges(), 1u);
}

class CondensationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CondensationPropertyTest, ResultIsAlwaysADag) {
  Digraph g = RandomDigraph(100, 300, GetParam());
  Condensation c = Condense(g);
  EXPECT_TRUE(IsDag(c.dag));
}

TEST_P(CondensationPropertyTest, DagVertexMapsAllVertices) {
  Digraph g = RandomDigraph(100, 250, GetParam() ^ 0x55);
  Condensation c = Condense(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LT(c.DagVertex(v), c.dag.NumVertices());
  }
}

TEST_P(CondensationPropertyTest, EveryOriginalEdgeMapsToDagEdgeOrSameScc) {
  Digraph g = RandomDigraph(80, 240, GetParam() ^ 0x99);
  Condensation c = Condense(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.OutNeighbors(v)) {
      const VertexId cv = c.DagVertex(v), cw = c.DagVertex(w);
      if (cv != cw) {
        EXPECT_TRUE(c.dag.HasEdge(cv, cw));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CondensationPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15));

}  // namespace
}  // namespace reach
