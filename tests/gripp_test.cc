#include "plain/gripp.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(GrippTest, TreeHasNoHopInstances) {
  const Digraph g = RandomTree(50, 3);
  Gripp index;
  index.Build(g);
  EXPECT_EQ(index.NumInstances(), 50u);  // one tree instance per vertex
  EXPECT_TRUE(index.Query(0, 33));
  EXPECT_FALSE(index.Query(33, 0));
}

TEST(GrippTest, InstancesArePlusNonTreeEdges) {
  // Diamond: 4 vertices, 4 edges, spanning tree has 3 edges -> 1 hop.
  const Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  Gripp index;
  index.Build(g);
  EXPECT_EQ(index.NumInstances(), 5u);
  EXPECT_TRUE(index.Query(0, 3));
  EXPECT_TRUE(index.Query(2, 3));
  EXPECT_FALSE(index.Query(1, 2));
}

TEST(GrippTest, WorksDirectlyOnCyclicGraphs) {
  // The Input = General row: no SCC condensation required.
  const Digraph g = Cycle(7);
  Gripp index;
  index.Build(g);
  for (VertexId s = 0; s < 7; ++s) {
    for (VertexId t = 0; t < 7; ++t) {
      EXPECT_TRUE(index.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(GrippTest, HopChainsAreFollowed) {
  // 0 -> 1, 2 -> 1 (hop), 2 -> 3, 0 -> ... needs multi-hop expansion:
  // build a chain of components linked by back-references.
  // 0->1->2, 3->2 visited -> hop; 3->4; path 0..? Use explicit case:
  // DFS from 0: 0->1->2; from 3: 3->(2 hop),4; from 5: 5->(4 hop),(1 hop).
  const Digraph g = Digraph::FromEdges(
      6, {{0, 1}, {1, 2}, {3, 2}, {3, 4}, {5, 4}, {5, 1}});
  Gripp index;
  index.Build(g);
  EXPECT_TRUE(index.Query(5, 2));   // 5 -> 1 (hop) -> 2
  EXPECT_TRUE(index.Query(3, 2));
  EXPECT_FALSE(index.Query(5, 3));
  EXPECT_FALSE(index.Query(2, 4));
}

class GrippPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GrippPropertyTest, MatchesOracleOnCyclicGraphs) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDigraph(44, 140, seed);
  Gripp index;
  TransitiveClosure oracle;
  index.Build(g);
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
          << s << "->" << t << " seed " << seed;
    }
  }
}

TEST_P(GrippPropertyTest, InstanceCountIsVPlusNonTreeEdges) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDigraph(60, 200, seed);
  Gripp index;
  index.Build(g);
  // instances = V + (E - tree_edges), and a spanning forest has at most
  // V - 1 tree edges, so V <= instances <= V + E and the index is linear.
  EXPECT_GE(index.NumInstances(), g.NumVertices());
  EXPECT_GE(index.NumInstances(),
            g.NumVertices() + g.NumEdges() - (g.NumVertices() - 1));
  EXPECT_LE(index.NumInstances(), g.NumVertices() + g.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrippPropertyTest,
                         ::testing::Values(201, 202, 203, 204, 205));

}  // namespace
}  // namespace reach
