#include "plain/dagger.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/rng.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(DaggerTest, StaticBehavesLikeGrail) {
  const Digraph g = RandomDag(50, 160, 7);
  Dagger index(3, 7);
  index.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      if (oracle.Query(s, t)) {
        EXPECT_TRUE(index.MaybeReachable(s, t)) << s << "->" << t;
      }
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(DaggerTest, InsertEdgeConnectsComponents) {
  const Digraph g = Digraph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  Dagger index;
  index.Build(g);
  EXPECT_FALSE(index.Query(0, 5));
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(2, 3)}).ok());
  EXPECT_TRUE(index.Query(0, 5));
  EXPECT_TRUE(index.MaybeReachable(0, 5));  // filter must not reject
  EXPECT_FALSE(index.Query(5, 0));
}

TEST(DaggerTest, InsertCreatingCycleStaysSound) {
  const Digraph g = Chain(6);
  Dagger index;
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(5, 0)}).ok());
  for (VertexId s = 0; s < 6; ++s) {
    for (VertexId t = 0; t < 6; ++t) {
      EXPECT_TRUE(index.MaybeReachable(s, t));  // no false negatives
      EXPECT_TRUE(index.Query(s, t));
    }
  }
}

class DaggerStreamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DaggerStreamTest, StreamedInsertsStayExactAndFilterSound) {
  const uint64_t seed = GetParam();
  const VertexId n = 32;
  Xoshiro256ss rng(seed);
  std::vector<Edge> edges = RandomDag(n, 50, seed).Edges();
  const Digraph base = Digraph::FromEdges(n, edges);
  Dagger index(3, seed);
  index.Build(base);

  for (int step = 0; step < 30; ++step) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(u, v)}).ok());
    edges.push_back({u, v});
  }
  const Digraph full = Digraph::FromEdges(n, edges);
  TransitiveClosure oracle;
  oracle.Build(full);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
          << s << "->" << t << " seed " << seed;
      if (oracle.Query(s, t)) {
        ASSERT_TRUE(index.MaybeReachable(s, t))
            << "filter false negative " << s << "->" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DaggerStreamTest,
                         ::testing::Values(251, 252, 253, 254, 255));

TEST(DaggerTest, DeleteEdgeIncrementally) {
  const Digraph g = Chain(6);
  Dagger index;
  index.Build(g);
  ASSERT_TRUE(index.SupportsDeletions());
  EXPECT_TRUE(index.Query(0, 5));
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Delete(2, 3)}).ok());
  EXPECT_FALSE(index.Query(0, 5));
  EXPECT_FALSE(index.Query(2, 3));
  EXPECT_TRUE(index.Query(0, 2));
  EXPECT_TRUE(index.Query(3, 5));
  // Re-insert resurrects, and the interval filter must not reject it.
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(2, 3)}).ok());
  EXPECT_TRUE(index.MaybeReachable(0, 5));
  EXPECT_TRUE(index.Query(0, 5));
}

TEST(DaggerTest, SccSplitAndMergeUnderUpdates) {
  // Deleting the back edge of a cycle splits the SCC; re-inserting merges
  // it again. Both transitions must keep answers exact without a Build.
  const Digraph g = Cycle(5);
  Dagger index;
  index.Build(g);
  EXPECT_TRUE(index.Query(3, 1));
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Delete(4, 0)}).ok());
  EXPECT_FALSE(index.Query(3, 1));  // the SCC is now a chain
  EXPECT_TRUE(index.Query(1, 3));
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(4, 0)}).ok());
  EXPECT_TRUE(index.Query(3, 1));  // merged back
  EXPECT_TRUE(index.Query(4, 4));
}

TEST(DaggerTest, StalenessBudgetRecommendsRebuild) {
  const Digraph g = Chain(8);
  Dagger index(2, 11, /*staleness_budget=*/1);
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Delete(1, 2)}).ok());
  const UpdateResult over = index.ApplyUpdate({EdgeUpdate::Delete(5, 6)});
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(over.status, UpdateStatus::kDeferredRebuild);
  EXPECT_TRUE(over.rebuild_recommended);
  // Advisory, not load-bearing: answers stay exact past the budget.
  EXPECT_FALSE(index.Query(0, 7));
  EXPECT_TRUE(index.Query(2, 5));
  ASSERT_TRUE(index.RebuildFromUpdates());
  EXPECT_EQ(index.Damage(), 0u);
  EXPECT_FALSE(index.Query(0, 7));
  EXPECT_TRUE(index.Query(2, 5));
}

TEST(DaggerTest, FilterPrecisionDecaysGracefully) {
  // After many inserts the filter may admit more maybes, but a rebuild
  // re-tightens it.
  const VertexId n = 64;
  const Digraph base = RandomDag(n, 100, 3);
  Dagger index(3, 3);
  index.Build(base);
  std::vector<Edge> edges = base.Edges();
  Xoshiro256ss rng(4);
  for (int i = 0; i < 20; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u != v) {
      ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(u, v)}).ok());
      edges.push_back({u, v});
    }
  }
  size_t maybes_dynamic = 0;
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) maybes_dynamic += index.MaybeReachable(s, t);
  }
  const Digraph full = Digraph::FromEdges(n, edges);
  Dagger rebuilt(3, 3);
  rebuilt.Build(full);
  size_t maybes_rebuilt = 0;
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      maybes_rebuilt += rebuilt.MaybeReachable(s, t);
    }
  }
  EXPECT_LE(maybes_rebuilt, maybes_dynamic);
}

}  // namespace
}  // namespace reach
