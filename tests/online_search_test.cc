#include "traversal/online_search.h"

#include <memory>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"

namespace reach {
namespace {

// Reference reachability by simple recursive-style DFS over a vector.
bool BruteReaches(const Digraph& g, VertexId s, VertexId t) {
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<VertexId> stack = {s};
  seen[s] = true;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    if (v == t) return true;
    for (VertexId w : g.OutNeighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

TEST(OnlineSearchTest, Figure1PaperQuery) {
  // §2.1: Qr(A, G) = true because of the s-t path (A, D, H, G).
  Digraph g = figure1::PlainGraph();
  SearchWorkspace ws;
  EXPECT_TRUE(BfsReachability(g, figure1::kA, figure1::kG, ws));
  EXPECT_TRUE(DfsReachability(g, figure1::kA, figure1::kG, ws));
  EXPECT_TRUE(BiBfsReachability(g, figure1::kA, figure1::kG, ws));
  // G cannot reach A.
  EXPECT_FALSE(BfsReachability(g, figure1::kG, figure1::kA, ws));
  EXPECT_FALSE(DfsReachability(g, figure1::kG, figure1::kA, ws));
  EXPECT_FALSE(BiBfsReachability(g, figure1::kG, figure1::kA, ws));
}

TEST(OnlineSearchTest, SelfReachability) {
  Digraph g = Digraph::FromEdges(3, {{0, 1}});
  SearchWorkspace ws;
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_TRUE(BfsReachability(g, v, v, ws));
    EXPECT_TRUE(DfsReachability(g, v, v, ws));
    EXPECT_TRUE(BiBfsReachability(g, v, v, ws));
  }
}

TEST(OnlineSearchTest, VisitCountReported) {
  Digraph g = Chain(100);
  SearchWorkspace ws;
  size_t visited = 0;
  EXPECT_TRUE(BfsReachability(g, 0, 99, ws, &visited));
  EXPECT_GE(visited, 99u);
  visited = 0;
  EXPECT_TRUE(BiBfsReachability(g, 0, 99, ws, &visited));
  EXPECT_GE(visited, 2u);
}

TEST(OnlineSearchTest, BiBfsVisitsFewerOnNegativeStar) {
  // Hub-and-spoke: s has huge out-fanout, t has tiny in-degree; backward
  // search from t should settle the negative query almost immediately.
  std::vector<Edge> edges;
  for (VertexId v = 2; v < 1000; ++v) edges.push_back({0, v});
  edges.push_back({1, 2});  // t=1 unreachable, in-degree 0
  Digraph g = Digraph::FromEdges(1000, edges);
  SearchWorkspace ws;
  size_t bfs_visits = 0, bibfs_visits = 0;
  EXPECT_FALSE(BfsReachability(g, 0, 1, ws, &bfs_visits));
  EXPECT_FALSE(BiBfsReachability(g, 0, 1, ws, &bibfs_visits));
  EXPECT_LT(bibfs_visits, bfs_visits / 10);
}

TEST(OnlineSearchTest, IndexAdapterNamesAndSize) {
  OnlineSearch bfs(TraversalKind::kBfs);
  OnlineSearch dfs(TraversalKind::kDfs);
  OnlineSearch bibfs(TraversalKind::kBiBfs);
  EXPECT_EQ(bfs.Name(), "bfs");
  EXPECT_EQ(dfs.Name(), "dfs");
  EXPECT_EQ(bibfs.Name(), "bibfs");
  EXPECT_EQ(bfs.IndexSizeBytes(), 0u);
  EXPECT_FALSE(bfs.IsComplete());
}

class OnlineSearchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlineSearchPropertyTest, AllTraversalsAgreeWithBruteForce) {
  const uint64_t seed = GetParam();
  Digraph g = RandomDigraph(48, 120, seed);
  SearchWorkspace ws;
  for (VertexId s = 0; s < g.NumVertices(); s += 3) {
    for (VertexId t = 0; t < g.NumVertices(); t += 3) {
      const bool expected = BruteReaches(g, s, t);
      EXPECT_EQ(BfsReachability(g, s, t, ws), expected);
      EXPECT_EQ(DfsReachability(g, s, t, ws), expected);
      EXPECT_EQ(BiBfsReachability(g, s, t, ws), expected)
          << "s=" << s << " t=" << t << " seed=" << seed;
    }
  }
}

TEST_P(OnlineSearchPropertyTest, AdapterMatchesFreeFunctions) {
  const uint64_t seed = GetParam();
  Digraph g = RandomDigraph(32, 90, seed ^ 0xf00d);
  OnlineSearch index(TraversalKind::kBiBfs);
  index.Build(g);
  SearchWorkspace ws;
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      EXPECT_EQ(index.Query(s, t), BfsReachability(g, s, t, ws));
    }
  }
  EXPECT_GT(index.total_visited(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineSearchPropertyTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

}  // namespace
}  // namespace reach
