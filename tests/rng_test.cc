#include "graph/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace reach {
namespace {

TEST(RngTest, SplitMix64Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SplitMix64SeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, Xoshiro256ssDeterministic) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, NextBoundedStaysInRange) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Xoshiro256ss rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256ss rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  // Mean of U[0,1) should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(0), Mix64(0));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);  // no collisions on consecutive ints
}

}  // namespace
}  // namespace reach
