#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "lcr/label_set.h"
#include "lcr/lcr_bfs.h"
#include "rlc/rlc_product_bfs.h"
#include "rpq/dfa.h"
#include "rpq/nfa.h"
#include "rpq/regex_parser.h"
#include "rpq/rpq_evaluator.h"

namespace reach {
namespace {

const std::vector<std::string> kAb = {"a", "b", "c"};

TEST(RegexParserTest, SingleLabel) {
  auto ast = ParseRegex("a", kAb);
  ASSERT_NE(ast, nullptr);
  EXPECT_EQ(ast->kind, RegexNode::Kind::kLabel);
  EXPECT_EQ(ast->label, 0u);
}

TEST(RegexParserTest, NumericLabels) {
  auto ast = ParseRegex("17", {});
  ASSERT_NE(ast, nullptr);
  EXPECT_EQ(ast->label, 17u);
}

TEST(RegexParserTest, PrecedenceKleeneOverConcatOverAlt) {
  auto ast = ParseRegex("a.b|c*", kAb);
  ASSERT_NE(ast, nullptr);
  EXPECT_EQ(ast->kind, RegexNode::Kind::kAlternation);
  EXPECT_EQ(ast->left->kind, RegexNode::Kind::kConcat);
  EXPECT_EQ(ast->right->kind, RegexNode::Kind::kStar);
}

TEST(RegexParserTest, UnicodeOperators) {
  auto a = ParseRegex("(a\xc2\xb7"           // a·b
                      "b)*",
                      kAb);
  auto b = ParseRegex("(a.b)*", kAb);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(RegexToString(*a, kAb), RegexToString(*b, kAb));
  auto c = ParseRegex("a\xe2\x88\xaa"  // a∪b
                      "b",
                      kAb);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, RegexNode::Kind::kAlternation);
}

TEST(RegexParserTest, Whitespace) {
  EXPECT_NE(ParseRegex("  ( a . b ) *  ", kAb), nullptr);
}

TEST(RegexParserTest, Errors) {
  std::string error;
  EXPECT_EQ(ParseRegex("", kAb, &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(ParseRegex("(a.b", kAb, &error), nullptr);
  EXPECT_EQ(ParseRegex("a..b", kAb, &error), nullptr);
  EXPECT_EQ(ParseRegex("unknownLabel", kAb, &error), nullptr);
  EXPECT_NE(error.find("unknown"), std::string::npos);
  EXPECT_EQ(ParseRegex("a)b", kAb, &error), nullptr);
  EXPECT_EQ(ParseRegex("99", kAb, &error), nullptr);  // out of range
}

Dfa CompileDfa(const std::string& pattern, Label num_labels = 3) {
  auto ast = ParseRegex(pattern, kAb);
  EXPECT_NE(ast, nullptr) << pattern;
  return BuildDfa(BuildNfa(*ast), num_labels);
}

TEST(NfaDfaTest, LanguageMembershipAgree) {
  const std::vector<std::string> patterns = {
      "a",       "a.b",      "a|b",      "a*",          "a+",
      "(a.b)*",  "(a|b)*",   "(a.b)+",   "a.(b|c)*",    "((a|b).c)*",
      "a*.b*",   "(a+|b+)*", "a.b.c",    "(a.a)*|(b)*",
  };
  const std::vector<std::vector<Label>> words = {
      {},        {0},       {1},       {0, 1},    {1, 0},  {0, 0},
      {0, 1, 2}, {0, 1, 0}, {2, 2, 2}, {0, 0, 1}, {1, 1},  {0, 1, 0, 1},
  };
  for (const auto& pattern : patterns) {
    auto ast = ParseRegex(pattern, kAb);
    ASSERT_NE(ast, nullptr) << pattern;
    const Nfa nfa = BuildNfa(*ast);
    const Dfa dfa = BuildDfa(nfa, 3);
    for (const auto& word : words) {
      EXPECT_EQ(nfa.Accepts(word), dfa.Accepts(word))
          << pattern << " on word size " << word.size();
    }
  }
}

TEST(NfaDfaTest, KnownLanguages) {
  const Dfa star = CompileDfa("(a.b)*");
  EXPECT_TRUE(star.Accepts({}));
  EXPECT_TRUE(star.Accepts({0, 1}));
  EXPECT_TRUE(star.Accepts({0, 1, 0, 1}));
  EXPECT_FALSE(star.Accepts({0}));
  EXPECT_FALSE(star.Accepts({1, 0}));

  const Dfa plus = CompileDfa("(a.b)+");
  EXPECT_FALSE(plus.Accepts({}));
  EXPECT_TRUE(plus.Accepts({0, 1}));

  const Dfa alt = CompileDfa("(a|b)*");
  EXPECT_TRUE(alt.Accepts({0, 1, 1, 0}));
  EXPECT_FALSE(alt.Accepts({2}));
}

TEST(RpqEvaluatorTest, Figure1PaperQueries) {
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  const auto& names = g.label_names();
  // §2.2: Qr(A, G, (friendOf ∪ follows)*) = false.
  auto q1 = RpqQuery::Compile("(friendOf|follows)*", names, kNumLabels);
  ASSERT_NE(q1, nullptr);
  EXPECT_FALSE(q1->Evaluate(g, kA, kG));
  // §4.2: Qr(L, B, (worksFor · friendOf)*) = true.
  auto q2 = RpqQuery::Compile("(worksFor.friendOf)*", names, kNumLabels);
  ASSERT_NE(q2, nullptr);
  EXPECT_TRUE(q2->Evaluate(g, kL, kB));
  // Plain reachability as the universal constraint: Qr(A, G) = true.
  auto q3 = RpqQuery::Compile("(friendOf|follows|worksFor)*", names,
                              kNumLabels);
  ASSERT_NE(q3, nullptr);
  EXPECT_TRUE(q3->Evaluate(g, kA, kG));
  // Non-Kleene constraint: a single worksFor edge.
  auto q4 = RpqQuery::Compile("worksFor", names, kNumLabels);
  ASSERT_NE(q4, nullptr);
  EXPECT_TRUE(q4->Evaluate(g, kH, kG));
  EXPECT_FALSE(q4->Evaluate(g, kA, kG));
}

class RpqCrossCheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RpqCrossCheckTest, AlternationStarMatchesLcrBfs) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(20, 80, 3, seed);
  SearchWorkspace ws;
  const struct {
    const char* pattern;
    LabelSet mask;
  } cases[] = {
      {"(a)*", 0b001},
      {"(a|b)*", 0b011},
      {"(a|c)*", 0b101},
      {"(a|b|c)*", 0b111},
  };
  for (const auto& c : cases) {
    auto query = RpqQuery::Compile(c.pattern, kAb, 3);
    ASSERT_NE(query, nullptr);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(query->Evaluate(g, s, t),
                  LcrBfsReachability(g, s, t, c.mask, ws))
            << c.pattern << " " << s << "->" << t << " seed " << seed;
      }
    }
  }
}

TEST_P(RpqCrossCheckTest, ConcatenationStarMatchesRlcProductBfs) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(18, 90, 3, seed);
  SearchWorkspace ws;
  const struct {
    const char* pattern;
    KleeneSequence seq;
  } cases[] = {
      {"(a.b)*", {0, 1}},
      {"(b.c)*", {1, 2}},
      {"(a.b.c)*", {0, 1, 2}},
      {"(a)*", {0}},
  };
  for (const auto& c : cases) {
    auto query = RpqQuery::Compile(c.pattern, kAb, 3);
    ASSERT_NE(query, nullptr);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(query->Evaluate(g, s, t),
                  RlcProductBfsReachability(g, s, t, c.seq, ws))
            << c.pattern << " " << s << "->" << t << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpqCrossCheckTest,
                         ::testing::Values(181, 182, 183, 184));

TEST(RpqEvaluatorTest, MixedConstraintBeyondLcrAndRlc) {
  // worksFor+ · friendOf — expressible neither as pure alternation-star
  // nor as pure concatenation-star (the §5 generality gap).
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  auto query =
      RpqQuery::Compile("worksFor+.friendOf", g.label_names(), kNumLabels);
  ASSERT_NE(query, nullptr);
  // L -worksFor-> C -worksFor-> M -friendOf-> B.
  EXPECT_TRUE(query->Evaluate(g, kL, kB));
  // H -worksFor-> G -friendOf-> B.
  EXPECT_TRUE(query->Evaluate(g, kH, kB));
  // A's first edge is follows: no match.
  EXPECT_FALSE(query->Evaluate(g, kA, kB));
  // Zero worksFor repeats not allowed by '+': D -friendOf-> H alone fails.
  auto strict = RpqQuery::Compile("worksFor+.friendOf", g.label_names(),
                                  kNumLabels);
  EXPECT_FALSE(strict->Evaluate(g, kD, kH));
}

}  // namespace
}  // namespace reach
