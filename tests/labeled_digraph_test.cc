#include "graph/labeled_digraph.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"

namespace reach {
namespace {

TEST(LabeledDigraphTest, EmptyGraph) {
  LabeledDigraph g = LabeledDigraph::FromEdges(0, 0, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumLabels(), 0u);
}

TEST(LabeledDigraphTest, BasicArcs) {
  LabeledDigraph g = LabeledDigraph::FromEdges(
      3, 2, {{0, 1, 0}, {0, 1, 1}, {1, 2, 0}});
  EXPECT_EQ(g.NumEdges(), 3u);
  ASSERT_EQ(g.OutArcs(0).size(), 2u);  // parallel edges, distinct labels
  EXPECT_EQ(g.OutArcs(0)[0].vertex, 1u);
  EXPECT_EQ(g.OutArcs(0)[0].label, 0u);
  EXPECT_EQ(g.OutArcs(0)[1].label, 1u);
  ASSERT_EQ(g.InArcs(1).size(), 2u);
  EXPECT_EQ(g.InArcs(1)[0].vertex, 0u);
}

TEST(LabeledDigraphTest, DeduplicatesIdenticalTriples) {
  LabeledDigraph g =
      LabeledDigraph::FromEdges(2, 1, {{0, 1, 0}, {0, 1, 0}});
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(LabeledDigraphTest, EdgesRoundTrip) {
  const std::vector<LabeledEdge> edges = {{0, 1, 0}, {0, 1, 1}, {1, 2, 0}};
  LabeledDigraph g = LabeledDigraph::FromEdges(3, 2, edges);
  EXPECT_EQ(g.Edges(), edges);
}

TEST(LabeledDigraphTest, ProjectPlainMergesParallelLabels) {
  LabeledDigraph g = LabeledDigraph::FromEdges(
      3, 3, {{0, 1, 0}, {0, 1, 1}, {0, 1, 2}, {1, 2, 0}});
  Digraph plain = g.ProjectPlain();
  EXPECT_EQ(plain.NumEdges(), 2u);
  EXPECT_TRUE(plain.HasEdge(0, 1));
  EXPECT_TRUE(plain.HasEdge(1, 2));
}

TEST(LabeledDigraphTest, LabelNames) {
  LabeledDigraph g = figure1::LabeledGraph();
  ASSERT_EQ(g.label_names().size(), 3u);
  EXPECT_EQ(g.label_names()[figure1::kFriendOf], "friendOf");
  EXPECT_EQ(g.label_names()[figure1::kFollows], "follows");
  EXPECT_EQ(g.label_names()[figure1::kWorksFor], "worksFor");
}

TEST(LabeledDigraphTest, Figure1Shape) {
  LabeledDigraph g = figure1::LabeledGraph();
  EXPECT_EQ(g.NumVertices(), figure1::kNumVertices);
  EXPECT_EQ(g.NumLabels(), figure1::kNumLabels);
  EXPECT_EQ(g.NumEdges(), 13u);
}

TEST(LabeledDigraphTest, InArcsMirrorOutArcs) {
  LabeledDigraph g = RandomLabeledDigraph(50, 250, 4, /*seed=*/17);
  size_t in_count = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) in_count += g.InArcs(v).size();
  EXPECT_EQ(in_count, g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const auto& arc : g.InArcs(v)) {
      bool found = false;
      for (const auto& out : g.OutArcs(arc.vertex)) {
        if (out.vertex == v && out.label == arc.label) found = true;
      }
      EXPECT_TRUE(found) << arc.vertex << " -" << arc.label << "-> " << v;
    }
  }
}

TEST(LabeledDigraphTest, DegreesCountArcs) {
  LabeledDigraph g = LabeledDigraph::FromEdges(
      3, 2, {{0, 1, 0}, {0, 1, 1}, {0, 2, 0}, {1, 2, 1}});
  EXPECT_EQ(g.OutDegree(0), 3u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.Degree(1), 3u);
}

}  // namespace
}  // namespace reach
