// Tests for the approximate-TC indexes (IP, BFL) and the other-techniques
// group (Feline, PReaCH, O'Reach): filter soundness in both directions and
// end-to-end exactness.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "plain/bfl.h"
#include "plain/feline.h"
#include "plain/ip_label.h"
#include "plain/oreach.h"
#include "plain/preach.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

class ApproxSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproxSeedTest, IpFilterHasNoFalseNegatives) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(56, 180, seed);
  IpLabel index(3, seed);
  index.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      if (oracle.Query(s, t)) {
        EXPECT_TRUE(index.MaybeReachable(s, t)) << s << "->" << t;
      }
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST_P(ApproxSeedTest, BflVerdictsAreNeverWrong) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(56, 170, seed);
  Bfl index(128, seed);
  index.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      const int verdict = index.FilterVerdict(s, t);
      if (verdict > 0) {
        EXPECT_TRUE(oracle.Query(s, t)) << s << "->" << t;
      }
      if (verdict < 0) {
        EXPECT_FALSE(oracle.Query(s, t)) << s << "->" << t;
      }
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST_P(ApproxSeedTest, PreachVerdictsAreNeverWrong) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(50, 150, seed);
  Preach index;
  index.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      const int verdict = index.FilterVerdict(s, t);
      if (verdict > 0) {
        EXPECT_TRUE(oracle.Query(s, t)) << s << "->" << t;
      }
      if (verdict < 0) {
        EXPECT_FALSE(oracle.Query(s, t)) << s << "->" << t;
      }
    }
  }
}

TEST_P(ApproxSeedTest, OReachVerdictsAreNeverWrong) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(50, 150, seed ^ 0x5);
  OReach index(16);
  index.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      const int verdict = index.FilterVerdict(s, t);
      if (verdict > 0) {
        EXPECT_TRUE(oracle.Query(s, t)) << s << "->" << t;
      }
      if (verdict < 0) {
        EXPECT_FALSE(oracle.Query(s, t)) << s << "->" << t;
      }
    }
  }
}

TEST_P(ApproxSeedTest, FelineFilterHasNoFalseNegatives) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(50, 150, seed ^ 0x9);
  Feline index;
  index.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      if (oracle.Query(s, t)) {
        EXPECT_TRUE(index.MaybeReachable(s, t)) << s << "->" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxSeedTest,
                         ::testing::Values(141, 142, 143, 144));

TEST(IpLabelTest, LargerKRejectsMore) {
  const Digraph g = RandomDag(120, 360, 7);
  IpLabel k1(1, 7), k8(8, 7);
  k1.Build(g);
  k8.Build(g);
  size_t rejected_k1 = 0, rejected_k8 = 0;
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      rejected_k1 += !k1.MaybeReachable(s, t);
      rejected_k8 += !k8.MaybeReachable(s, t);
    }
  }
  EXPECT_GE(rejected_k8, rejected_k1);
}

TEST(BflTest, MoreBitsRejectNoLess) {
  const Digraph g = RandomDag(120, 360, 8);
  Bfl small(64, 8), large(512, 8);
  small.Build(g);
  large.Build(g);
  size_t rejected_small = 0, rejected_large = 0;
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      rejected_small += small.FilterVerdict(s, t) < 0;
      rejected_large += large.FilterVerdict(s, t) < 0;
    }
  }
  // With 8x the bits, collisions can only decrease statistically; allow a
  // tiny slack because the hash functions differ per size.
  EXPECT_GE(rejected_large + 8, rejected_small);
}

TEST(BflTest, TreeIntervalSettlesTreePathsPositively) {
  const Digraph g = Chain(32);
  Bfl index;
  index.Build(g);
  EXPECT_GT(index.FilterVerdict(0, 31), 0);  // pure index lookup
}

TEST(FelineTest, DominanceRejectsInConstantTime) {
  const Digraph g = Chain(16);
  Feline index;
  index.Build(g);
  EXPECT_FALSE(index.Query(15, 0));
  EXPECT_TRUE(index.Query(0, 15));
  EXPECT_EQ(index.IndexSizeBytes(), 3 * 16 * sizeof(uint32_t));
}

TEST(PreachTest, SubtreeCertificateIsPositive) {
  const Digraph g = Chain(16);
  Preach index;
  index.Build(g);
  EXPECT_GT(index.FilterVerdict(0, 15), 0);
  EXPECT_LT(index.FilterVerdict(15, 0), 0);
}

TEST(OReachTest, CommonSupportIsPositive) {
  // Hub graph: 0..9 -> 10 -> 11..20; the hub 10 is a support.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 10; ++v) edges.push_back({v, 10});
  for (VertexId v = 11; v < 21; ++v) edges.push_back({10, v});
  const Digraph g = Digraph::FromEdges(21, edges);
  OReach index(8);
  index.Build(g);
  EXPECT_GT(index.FilterVerdict(0, 11), 0);
  EXPECT_TRUE(index.Query(0, 11));
  EXPECT_FALSE(index.Query(11, 0));
}

}  // namespace
}  // namespace reach
