// Cross-cutting conformance suite: EVERY plain index in the registry must
// agree exactly with the transitive-closure oracle on every graph family,
// for all vertex pairs — including cyclic inputs (exercising the §3.1 SCC
// reduction), DAGs, trees, dense graphs, and the paper's Figure 1.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "plain/registry.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

class PlainConformanceTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

void ExpectMatchesOracle(ReachabilityIndex& index, const Digraph& graph,
                         const std::string& context) {
  TransitiveClosure oracle;
  oracle.Build(graph);
  index.Build(graph);
  for (VertexId s = 0; s < graph.NumVertices(); ++s) {
    for (VertexId t = 0; t < graph.NumVertices(); ++t) {
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
          << context << ": " << index.Name() << " disagrees on " << s
          << " -> " << t;
    }
  }
}

TEST_P(PlainConformanceTest, MatchesTransitiveClosureOnAllFamilies) {
  const auto& [spec, seed] = GetParam();
  auto index = MakePlainIndex(spec);
  ASSERT_NE(index, nullptr) << spec;

  ExpectMatchesOracle(*index, RandomDigraph(40, 120, seed), "cyclic-sparse");
  ExpectMatchesOracle(*index, RandomDigraph(24, 180, seed), "cyclic-dense");
  ExpectMatchesOracle(*index, RandomDag(40, 110, seed), "dag");
  ExpectMatchesOracle(*index, ScaleFreeDag(40, 2, seed), "scale-free");
  ExpectMatchesOracle(*index, RandomTree(40, seed), "tree");
  ExpectMatchesOracle(*index, LayeredDag(4, 8, 2, seed), "layered");
  ExpectMatchesOracle(*index, Chain(12), "chain");
  ExpectMatchesOracle(*index, Cycle(12), "cycle");
  ExpectMatchesOracle(*index, figure1::PlainGraph(), "figure1");
  ExpectMatchesOracle(*index, Digraph::FromEdges(5, {}), "edgeless");
}

TEST_P(PlainConformanceTest, ReflexivityAndRebuild) {
  const auto& [spec, seed] = GetParam();
  auto index = MakePlainIndex(spec);
  ASSERT_NE(index, nullptr);
  const Digraph g1 = RandomDigraph(30, 90, seed);
  index->Build(g1);
  for (VertexId v = 0; v < g1.NumVertices(); ++v) {
    EXPECT_TRUE(index->Query(v, v)) << index->Name();
  }
  // Rebuilding on a different graph must fully replace prior state.
  const Digraph g2 = RandomDag(25, 70, seed + 1);
  ExpectMatchesOracle(*index, g2, "rebuild");
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, PlainConformanceTest,
    ::testing::Combine(::testing::ValuesIn(DefaultPlainIndexSpecs()),
                       ::testing::Values(101, 202, 303)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(PlainRegistryTest, UnknownSpecReturnsNull) {
  EXPECT_EQ(MakePlainIndex("nonsense"), nullptr);
}

TEST(PlainRegistryTest, ParamSpecsApply) {
  auto grail = MakePlainIndex("grail:k=5");
  ASSERT_NE(grail, nullptr);
  EXPECT_NE(grail->Name().find("k=5"), std::string::npos);
  auto bfl = MakePlainIndex("bfl:bits=128");
  ASSERT_NE(bfl, nullptr);
  EXPECT_NE(bfl->Name().find("128"), std::string::npos);
}

TEST(PlainRegistryTest, DefaultRosterIsBuildable) {
  const Digraph g = RandomDigraph(20, 60, 7);
  for (const std::string& spec : DefaultPlainIndexSpecs()) {
    auto index = MakePlainIndex(spec);
    ASSERT_NE(index, nullptr) << spec;
    index->Build(g);
    EXPECT_FALSE(index->Name().empty());
  }
}

TEST(PlainRegistryTest, CompletenessFlagsMatchTable1) {
  // Complete rows of Table 1: tree cover, dual labeling, 2-hop family, TC.
  for (const char* spec :
       {"tc", "treecover", "dual", "chaincover", "pll", "tfl"}) {
    auto index = MakePlainIndex(spec);
    index->Build(Chain(4));
    EXPECT_TRUE(index->IsComplete()) << spec;
  }
  // Partial rows: GRAIL, Ferrari, IP, BFL, O'Reach, DBL, Feline, PReaCH.
  for (const char* spec :
       {"grail", "gripp", "ferrari", "ip", "bfl", "oreach", "dbl", "dagger",
        "feline", "preach", "bfs", "bibfs"}) {
    auto index = MakePlainIndex(spec);
    index->Build(Chain(4));
    EXPECT_FALSE(index->IsComplete()) << spec;
  }
}

}  // namespace
}  // namespace reach
