// Cross-cutting conformance suite: EVERY plain index in the factory
// roster must agree exactly with the transitive-closure oracle on every
// graph family,
// for all vertex pairs — including cyclic inputs (exercising the §3.1 SCC
// reduction), DAGs, trees, dense graphs, and the paper's Figure 1.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "obs/query_probe.h"
#include "core/index_factory.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

class PlainConformanceTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

void ExpectMatchesOracle(ReachabilityIndex& index, const Digraph& graph,
                         const std::string& context) {
  TransitiveClosure oracle;
  oracle.Build(graph);
  index.Build(graph);
  for (VertexId s = 0; s < graph.NumVertices(); ++s) {
    for (VertexId t = 0; t < graph.NumVertices(); ++t) {
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
          << context << ": " << index.Name() << " disagrees on " << s
          << " -> " << t;
    }
  }
}

TEST_P(PlainConformanceTest, MatchesTransitiveClosureOnAllFamilies) {
  const auto& [spec, seed] = GetParam();
  auto index = MakeIndex(spec).plain;
  ASSERT_NE(index, nullptr) << spec;

  ExpectMatchesOracle(*index, RandomDigraph(40, 120, seed), "cyclic-sparse");
  ExpectMatchesOracle(*index, RandomDigraph(24, 180, seed), "cyclic-dense");
  ExpectMatchesOracle(*index, RandomDag(40, 110, seed), "dag");
  ExpectMatchesOracle(*index, ScaleFreeDag(40, 2, seed), "scale-free");
  ExpectMatchesOracle(*index, RandomTree(40, seed), "tree");
  ExpectMatchesOracle(*index, LayeredDag(4, 8, 2, seed), "layered");
  ExpectMatchesOracle(*index, Chain(12), "chain");
  ExpectMatchesOracle(*index, Cycle(12), "cycle");
  ExpectMatchesOracle(*index, figure1::PlainGraph(), "figure1");
  ExpectMatchesOracle(*index, Digraph::FromEdges(5, {}), "edgeless");
}

TEST_P(PlainConformanceTest, ReflexivityAndRebuild) {
  const auto& [spec, seed] = GetParam();
  auto index = MakeIndex(spec).plain;
  ASSERT_NE(index, nullptr);
  const Digraph g1 = RandomDigraph(30, 90, seed);
  index->Build(g1);
  for (VertexId v = 0; v < g1.NumVertices(); ++v) {
    EXPECT_TRUE(index->Query(v, v)) << index->Name();
  }
  // Rebuilding on a different graph must fully replace prior state.
  const Digraph g2 = RandomDag(25, 70, seed + 1);
  ExpectMatchesOracle(*index, g2, "rebuild");
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, PlainConformanceTest,
    ::testing::Combine(::testing::ValuesIn(DefaultIndexSpecs(IndexFamily::kPlain)),
                       ::testing::Values(101, 202, 303)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(PlainFactoryTest, UnknownSpecReturnsEmpty) {
  EXPECT_FALSE(MakeIndex("nonsense"));
}

TEST(PlainFactoryTest, ParamSpecsApply) {
  auto grail = MakeIndex("grail:k=5").plain;
  ASSERT_NE(grail, nullptr);
  EXPECT_NE(grail->Name().find("k=5"), std::string::npos);
  auto bfl = MakeIndex("bfl:bits=128").plain;
  ASSERT_NE(bfl, nullptr);
  EXPECT_NE(bfl->Name().find("128"), std::string::npos);
}

TEST(PlainFactoryTest, DefaultRosterIsBuildable) {
  const Digraph g = RandomDigraph(20, 60, 7);
  for (const std::string& spec : DefaultIndexSpecs(IndexFamily::kPlain)) {
    auto index = MakeIndex(spec).plain;
    ASSERT_NE(index, nullptr) << spec;
    index->Build(g);
    EXPECT_FALSE(index->Name().empty());
  }
}

TEST(PlainFactoryTest, CompletenessFlagsMatchTable1) {
  // Complete rows of Table 1: tree cover, dual labeling, 2-hop family, TC.
  for (const char* spec :
       {"tc", "treecover", "dual", "chaincover", "pll", "tfl"}) {
    auto index = MakeIndex(spec).plain;
    index->Build(Chain(4));
    EXPECT_TRUE(index->IsComplete()) << spec;
  }
  // Partial rows: GRAIL, Ferrari, IP, BFL, O'Reach, DBL, Feline, PReaCH.
  for (const char* spec :
       {"grail", "gripp", "ferrari", "ip", "bfl", "oreach", "dbl", "dagger",
        "feline", "preach", "bfs", "bibfs"}) {
    auto index = MakeIndex(spec).plain;
    index->Build(Chain(4));
    EXPECT_FALSE(index->IsComplete()) << spec;
  }
}

// A negative query against GRAIL must leave probe evidence: either the
// interval labels rejected it outright (label_rejections) or the index
// fell back to guided DFS (fallbacks). Uses the paper's Figure 1 graph.
TEST(PlainProbeTest, GrailRecordsNegativeQueryEvidence) {
  const Digraph g = figure1::PlainGraph();
  TransitiveClosure oracle;
  oracle.Build(g);
  auto grail = MakeIndex("grail").plain;
  ASSERT_NE(grail, nullptr);
  grail->Build(g);

  VertexId neg_s = 0, neg_t = 0;
  bool found = false;
  for (VertexId s = 0; s < g.NumVertices() && !found; ++s) {
    for (VertexId t = 0; t < g.NumVertices() && !found; ++t) {
      if (!oracle.Query(s, t)) {
        neg_s = s;
        neg_t = t;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "Figure 1 has no unreachable pair?";

  grail->ResetProbe();
  EXPECT_FALSE(grail->Query(neg_s, neg_t));
  const QueryProbe probe = grail->Probe();
  if (kMetricsCompiled) {
    EXPECT_EQ(probe.queries, 1u);
    EXPECT_EQ(probe.positives, 0u);
    EXPECT_GT(probe.labels_scanned, 0u);
    EXPECT_GE(probe.label_rejections + probe.fallbacks, 1u)
        << "negative answer must be attributed to labels or fallback";
  } else {
    EXPECT_EQ(probe.queries, 0u);
  }
}

TEST(PlainProbeTest, InstrumentedRosterCountsQueriesAndBuildStats) {
  const Digraph g = RandomDigraph(24, 72, 11);
  // The indexes the tentpole instruments end-to-end (probe + phases).
  for (const char* spec : {"bfs", "dfs", "bibfs", "tc", "treecover", "grail",
                           "ferrari", "bfl", "pll", "tfl"}) {
    auto index = MakeIndex(spec).plain;
    ASSERT_NE(index, nullptr) << spec;
    index->Build(g);
    index->ResetProbe();
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      index->Query(s, (s * 7 + 1) % g.NumVertices());
    }
    const QueryProbe probe = index->Probe();
    // Online searches (bfs/dfs/bibfs) are index-free: their Build() only
    // stores a pointer, so phase/build-time assertions apply to the rest.
    const bool builds_an_index =
        std::string(spec) != "bfs" && std::string(spec) != "dfs" &&
        std::string(spec) != "bibfs";
    if (kMetricsCompiled) {
      EXPECT_EQ(probe.queries, g.NumVertices()) << spec;
      if (builds_an_index) {
        EXPECT_GT(index->Stats().build_time.count(), 0) << spec;
        EXPECT_FALSE(index->Stats().phases.empty()) << spec;
      }
    } else {
      EXPECT_EQ(probe.queries, 0u) << spec;
    }
    // ResetProbe must zero everything regardless of compile mode.
    index->ResetProbe();
    index->Probe().ForEachField(
        [&](const char* field, uint64_t value) {
          EXPECT_EQ(value, 0u) << spec << "." << field;
        });
  }
}

}  // namespace
}  // namespace reach
