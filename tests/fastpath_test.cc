// Differential suite for the composable fast-path layer
// (core/fastpath_index.h): for EVERY plain index X on the factory roster,
// FastPathIndex(X) must be query-equivalent to bare X and to the
// transitive-closure oracle — on random cyclic digraphs, the adversarial
// deep-chain-with-shortcuts family (order filters never fire), and dense
// bipartite DAGs (no transitivity, controlled negative mix) — plus
// observation-stack soundness, dynamic-insert semantics, and factory
// capability propagation.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fastpath_index.h"
#include "core/index_factory.h"
#include "core/observation_stack.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

constexpr size_t kPairsPerGraph = 10000;

struct TestGraph {
  const char* name;
  Digraph graph;
};

std::vector<TestGraph> DifferentialGraphs(uint64_t seed) {
  std::vector<TestGraph> graphs;
  graphs.push_back({"cyclic-random", RandomDigraph(150, 450, seed)});
  graphs.push_back({"deep-chain", ChainWithShortcuts(300, 50, seed)});
  graphs.push_back({"dense-bipartite", DenseBipartiteDag(32, 32, 0.2, seed)});
  return graphs;
}

// FastPathIndex(X) vs bare X vs oracle on 10k random pairs per family.
class FastPathDifferentialTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(FastPathDifferentialTest, AgreesWithBareIndexAndOracle) {
  const std::string& spec = GetParam();
  auto wrapped = MakeIndex(spec + ":fastpath=1").plain;
  auto bare = MakeIndex(spec).plain;
  ASSERT_NE(wrapped, nullptr) << spec;
  ASSERT_NE(bare, nullptr) << spec;

  for (const TestGraph& tg : DifferentialGraphs(/*seed=*/7)) {
    TransitiveClosure oracle;
    oracle.Build(tg.graph);
    wrapped->Build(tg.graph);
    bare->Build(tg.graph);
    const VertexId n = static_cast<VertexId>(tg.graph.NumVertices());
    Xoshiro256ss rng(0xFA57 + n);
    for (size_t i = 0; i < kPairsPerGraph; ++i) {
      const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
      const bool expected = oracle.Query(s, t);
      ASSERT_EQ(bare->Query(s, t), expected)
          << tg.name << ": " << bare->Name() << " vs oracle on " << s
          << " -> " << t;
      ASSERT_EQ(wrapped->Query(s, t), expected)
          << tg.name << ": " << wrapped->Name() << " vs oracle on " << s
          << " -> " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, FastPathDifferentialTest,
    ::testing::ValuesIn(DefaultIndexSpecs(IndexFamily::kPlain)),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Observation-stack soundness: a decided verdict must match the oracle.

TEST(ObservationStackTest, VerdictsAreSoundOnAllFamilies) {
  const std::vector<TestGraph> graphs = {
      {"cyclic", RandomDigraph(80, 240, 11)},
      {"dag", RandomDag(80, 200, 12)},
      {"chain", ChainWithShortcuts(120, 20, 13)},
      {"bipartite", DenseBipartiteDag(20, 20, 0.3, 14)},
      {"edgeless", Digraph::FromEdges(6, {})},
  };
  for (const TestGraph& tg : graphs) {
    TransitiveClosure oracle;
    oracle.Build(tg.graph);
    ObservationStack stack;
    stack.Build(tg.graph);
    size_t decided = 0;
    for (VertexId s = 0; s < tg.graph.NumVertices(); ++s) {
      for (VertexId t = 0; t < tg.graph.NumVertices(); ++t) {
        const int verdict = stack.Verdict(s, t);
        if (verdict > 0) {
          EXPECT_TRUE(oracle.Query(s, t))
              << tg.name << ": false positive on " << s << " -> " << t;
        } else if (verdict < 0) {
          EXPECT_FALSE(oracle.Query(s, t))
              << tg.name << ": false negative on " << s << " -> " << t;
        }
        decided += verdict != 0;
      }
    }
    if (tg.graph.NumEdges() > 0) {
      EXPECT_GT(decided, 0u) << tg.name;
    }
  }
}

TEST(ObservationStackTest, ObserverBudgetIsClamped) {
  ObservationStack::Options options;
  options.num_supports = 200;  // together far past the 64-bit signature
  options.num_anti = 200;
  ObservationStack stack(options);
  stack.Build(RandomDag(60, 150, 5));
  EXPECT_LE(stack.NumObservationVertices(), 64u);
  EXPECT_GT(stack.SizeBytes(), 0u);
}

// ---------------------------------------------------------------------
// Verdict accounting and the decided fraction on a favourable workload.

TEST(FastPathIndexTest, VerdictStatsAccountForEveryQuery) {
  auto made = MakeIndex("pll:fastpath=1");  // pll is dynamic in this repo
  auto* fast = dynamic_cast<DynamicFastPathIndex*>(made.plain.get());
  ASSERT_NE(fast, nullptr);
  const Digraph g = RandomDag(100, 250, 21);
  fast->Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  Xoshiro256ss rng(22);
  const size_t kQueries = 2000;
  for (size_t i = 0; i < kQueries; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(100));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(100));
    EXPECT_EQ(fast->Query(s, t), oracle.Query(s, t));
  }
  const FastPathVerdictStats stats = fast->VerdictStats();
  EXPECT_EQ(stats.Total(), kQueries);
  // Sparse random DAGs are negative-dominated; the order filters alone
  // should decide well over half of the pairs (the ISSUE's hit-rate bar).
  EXPECT_GT(stats.Decided(), kQueries / 2);
}

// ---------------------------------------------------------------------
// Dynamic composition: ApplyUpdate must flow through, and cached
// verdicts in the unsound direction must stop firing (inserts poison
// negatives, deletes poison positives — until the next Build).

TEST(FastPathIndexTest, InsertEdgeSuppressesStaleNegativeVerdicts) {
  auto made = MakeIndex("dagger:fastpath=1");
  ASSERT_TRUE(made.caps.dynamic);
  auto* fast = dynamic_cast<DynamicFastPathIndex*>(made.plain.get());
  ASSERT_NE(fast, nullptr);
  const Digraph g = Chain(6);  // 0 -> 1 -> ... -> 5
  fast->Build(g);
  EXPECT_TRUE(fast->Query(0, 5));
  EXPECT_FALSE(fast->Query(5, 0));  // order filter decides this negatively
  // 5 -> 0 closes a cycle.
  ASSERT_TRUE(fast->ApplyUpdate({EdgeUpdate::Insert(5, 0)}).ok());
  EXPECT_TRUE(fast->Query(5, 0));
  EXPECT_TRUE(fast->Query(3, 2));
  // A rebuild restores fast-path negatives over the new edge set.
  Digraph g2 = Digraph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                      {5, 0}});
  fast->Build(g2);
  EXPECT_TRUE(fast->Query(5, 0));
}

TEST(FastPathIndexTest, DeleteSuppressesStalePositiveVerdicts) {
  // The dangerous direction: after a delete, a cached positive verdict
  // (e.g. DFS containment on the chain) would be a wrong answer. The
  // wrapper must demote positives to undecided and let the inner index
  // (which processed the tombstone) answer.
  auto made = MakeIndex("pll:fastpath=1");
  ASSERT_TRUE(made.caps.decremental);
  auto* fast = dynamic_cast<DynamicFastPathIndex*>(made.plain.get());
  ASSERT_NE(fast, nullptr);
  // The dynamic inner index references the build graph across updates, so
  // it must outlive them.
  const Digraph g = Chain(6);
  fast->Build(g);
  EXPECT_TRUE(fast->Query(0, 5));  // decided positively by the stack
  ASSERT_TRUE(fast->SupportsDeletions());
  const UpdateResult del = fast->ApplyUpdate({EdgeUpdate::Delete(2, 3)});
  ASSERT_TRUE(del.ok());
  EXPECT_FALSE(fast->Query(0, 5));  // stale positive must NOT fire
  EXPECT_FALSE(fast->Query(2, 3));
  EXPECT_TRUE(fast->Query(0, 2));
  EXPECT_TRUE(fast->Query(3, 5));
  // Negative verdicts stay armed (no insert yet): 5 -> 0 is still decided
  // without consulting the inner index, and remains correct.
  EXPECT_FALSE(fast->Query(5, 0));
}

TEST(FastPathIndexTest, BuildReArmsVerdictsAfterDeletes) {
  // Both suppression flags must clear on Build — and only on Build:
  // RebuildFromUpdates re-minimizes the inner index but cannot refresh
  // the observation stack, so suppression persists across it.
  auto made = MakeIndex("pll:fastpath=1");
  auto* fast = dynamic_cast<DynamicFastPathIndex*>(made.plain.get());
  ASSERT_NE(fast, nullptr);
  const Digraph g = Chain(5);
  fast->Build(g);
  ASSERT_TRUE(fast->ApplyUpdate({EdgeUpdate::Delete(1, 2)}).ok());
  ASSERT_TRUE(fast->ApplyUpdate({EdgeUpdate::Insert(0, 4)}).ok());

  auto decided = [&](VertexId s, VertexId t) {
    const FastPathVerdictStats before = fast->VerdictStats();
    (void)fast->Query(s, t);
    return fast->VerdictStats().Decided() > before.Decided();
  };
  // Suppressed in both directions: nothing is decided at the stack.
  EXPECT_FALSE(decided(0, 4));
  EXPECT_FALSE(decided(4, 0));
  // Folding the backlog into the inner labels does NOT re-arm.
  ASSERT_TRUE(fast->RebuildFromUpdates());
  EXPECT_FALSE(decided(0, 4));
  // A full Build over the updated graph re-arms both directions.
  const Digraph g2 =
      Digraph::FromEdges(5, {{0, 1}, {2, 3}, {3, 4}, {0, 4}});
  fast->Build(g2);
  EXPECT_TRUE(fast->Query(0, 4));
  EXPECT_FALSE(fast->Query(1, 2));
  EXPECT_TRUE(decided(0, 4) || decided(4, 0));
}

TEST(FastPathIndexTest, DynamicWrapperStaysConformantUnderInserts) {
  auto made = MakeIndex("dagger:fastpath=1");
  auto* fast = dynamic_cast<DynamicFastPathIndex*>(made.plain.get());
  ASSERT_NE(fast, nullptr);
  Digraph g = RandomDag(40, 80, 31);
  fast->Build(g);
  std::vector<Edge> edges;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.OutNeighbors(v)) edges.push_back({v, w});
  }
  Xoshiro256ss rng(32);
  for (int round = 0; round < 20; ++round) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(40));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(40));
    if (s == t) continue;
    ASSERT_TRUE(fast->ApplyUpdate({EdgeUpdate::Insert(s, t)}).ok());
    edges.push_back({s, t});
    TransitiveClosure oracle;
    oracle.Build(Digraph::FromEdges(40, edges));
    for (VertexId a = 0; a < 40; ++a) {
      for (VertexId b = 0; b < 40; ++b) {
        ASSERT_EQ(fast->Query(a, b), oracle.Query(a, b))
            << "after inserting " << s << " -> " << t << ": " << a << " -> "
            << b;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Factory wiring: capability propagation and the spec params.

TEST(FastPathFactoryTest, CapabilityPropagation) {
  const auto static_made = MakeIndex("grail:fastpath=1");
  ASSERT_NE(static_made.plain, nullptr);
  // `complete` follows the inner index — grail is registered incomplete,
  // and wrapping it must not launder that away.
  EXPECT_EQ(static_made.caps.complete, MakeIndex("grail").caps.complete);
  EXPECT_FALSE(static_made.caps.dynamic);
  EXPECT_FALSE(static_made.caps.serializable);  // stack is never persisted
  EXPECT_NE(dynamic_cast<FastPathIndex*>(static_made.plain.get()), nullptr);
  EXPECT_EQ(static_made.plain->Name().rfind("fastpath+", 0), 0u);

  // pll is dynamic here (PrunedTwoHop supports ApplyUpdate), so the
  // factory must pick the dynamic wrapper and keep the write API
  // reachable; `decremental` must follow the inner index too.
  const auto dynamic_made = MakeIndex("pll:fastpath=1");
  ASSERT_NE(dynamic_made.plain, nullptr);
  EXPECT_TRUE(dynamic_made.caps.dynamic);
  EXPECT_TRUE(dynamic_made.caps.decremental);
  EXPECT_FALSE(static_made.caps.decremental);
  EXPECT_TRUE(dynamic_made.caps.complete);
  EXPECT_FALSE(dynamic_made.caps.serializable);
  EXPECT_EQ(dynamic_made.plain->Name(), "fastpath+pll");
  EXPECT_NE(dynamic_cast<DynamicFastPathIndex*>(dynamic_made.plain.get()),
            nullptr);
  EXPECT_NE(dynamic_cast<DynamicReachabilityIndex*>(dynamic_made.plain.get()),
            nullptr);

  // Signature budget params flow through to the stack.
  const auto tuned = MakeIndex("grail:fastpath=1:supports=8:anti=4");
  auto* fast = dynamic_cast<FastPathIndex*>(tuned.plain.get());
  ASSERT_NE(fast, nullptr);
  fast->Build(RandomDag(50, 120, 41));
  EXPECT_LE(fast->observations().NumObservationVertices(), 12u);
}

TEST(FastPathFactoryTest, RosterDocsMentionFastPathParams) {
  bool found = false;
  for (const SpecDoc& doc : DescribeIndexSpecs(IndexFamily::kPlain)) {
    if (doc.spec.find("fastpath") != std::string::npos) {
      found = true;
      EXPECT_NE(doc.params.find("supports"), std::string::npos);
      EXPECT_NE(doc.params.find("anti"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace reach
