#include "core/label_kernels.h"

#include "core/serialize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "plain/pruned_two_hop.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

using Set = std::vector<uint32_t>;

// A sorted duplicate-free set of `size` values drawn from [0, universe).
Set RandomSortedSet(Xoshiro256ss& rng, size_t size, uint32_t universe) {
  Set values;
  values.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    values.push_back(static_cast<uint32_t>(rng.NextBounded(universe)));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

// Every kernel under test, compared pointwise against the scalar reference.
void ExpectAllKernelsAgree(const Set& a, const Set& b,
                           const std::string& context) {
  const bool expected =
      IntersectSortedScalar(a.data(), a.size(), b.data(), b.size());
  EXPECT_EQ(IntersectSortedBranchless(a.data(), a.size(), b.data(), b.size()),
            expected)
      << "branchless " << context;
  EXPECT_EQ(IntersectSortedWord(a.data(), a.size(), b.data(), b.size()),
            expected)
      << "word64 " << context;
  EXPECT_EQ(IntersectSortedBlocks(a.data(), a.size(), b.data(), b.size()),
            expected)
      << "blocks(" << ActiveIntersectKernelName() << ") " << context;
  if (!a.empty()) {
    EXPECT_EQ(
        IntersectSortedGalloping(a.data(), a.size(), b.data(), b.size()),
        expected)
        << "gallop(a,b) " << context;
  }
  if (!b.empty()) {
    EXPECT_EQ(
        IntersectSortedGalloping(b.data(), b.size(), a.data(), a.size()),
        expected)
        << "gallop(b,a) " << context;
  }
#if REACH_LABEL_KERNELS_X86
  if (__builtin_cpu_supports("sse2")) {
    EXPECT_EQ(IntersectSortedSse2(a.data(), a.size(), b.data(), b.size()),
              expected)
        << "sse2 " << context;
  }
  if (__builtin_cpu_supports("avx2")) {
    EXPECT_EQ(IntersectSortedAvx2(a.data(), a.size(), b.data(), b.size()),
              expected)
        << "avx2 " << context;
  }
#endif
  EXPECT_EQ(IntersectSorted(a.data(), a.size(), b.data(), b.size()), expected)
      << "engine " << context;
}

TEST(LabelKernelsTest, EdgeCases) {
  const Set empty;
  const Set one{7};
  const Set other{9};
  Set run(64);
  for (uint32_t i = 0; i < 64; ++i) run[i] = i;
  Set shifted(64);
  for (uint32_t i = 0; i < 64; ++i) shifted[i] = 64 + i;

  ExpectAllKernelsAgree(empty, empty, "empty/empty");
  ExpectAllKernelsAgree(empty, run, "empty/run");
  ExpectAllKernelsAgree(run, empty, "run/empty");
  ExpectAllKernelsAgree(one, one, "singleton equal");
  ExpectAllKernelsAgree(one, other, "singleton distinct");
  ExpectAllKernelsAgree(run, run, "all-overlap");
  ExpectAllKernelsAgree(run, shifted, "disjoint ranges");
  // Interleaved but never equal: the classic worst case for prefilters.
  Set evens, odds;
  for (uint32_t i = 0; i < 64; ++i) (i % 2 ? odds : evens).push_back(i);
  ExpectAllKernelsAgree(evens, odds, "interleaved disjoint");
  // Match only at the very last element of both.
  Set tail_a = evens, tail_b = odds;
  tail_a.push_back(1000);
  tail_b.push_back(1000);
  ExpectAllKernelsAgree(tail_a, tail_b, "last-element match");
}

TEST(LabelKernelsTest, RandomizedDifferential) {
  // 10k random pairs spanning every size regime the engine dispatches on:
  // similar sizes (block kernels), >= 8x skew (galloping), tiny arrays
  // (scalar tails), plus sparse/dense universes for low/high hit rates.
  Xoshiro256ss rng(0x6b65726eULL);
  const size_t sizes[] = {0, 1, 2, 3, 5, 8, 15, 31, 64, 200, 1024};
  const uint32_t universes[] = {16, 1024, 1u << 20};
  for (int iter = 0; iter < 10000; ++iter) {
    const size_t na = sizes[rng.NextBounded(std::size(sizes))];
    const size_t nb = sizes[rng.NextBounded(std::size(sizes))];
    const uint32_t universe =
        universes[rng.NextBounded(std::size(universes))];
    const Set a = RandomSortedSet(rng, na, universe);
    const Set b = RandomSortedSet(rng, nb, universe);
    ExpectAllKernelsAgree(a, b,
                          "iter=" + std::to_string(iter) +
                              " universe=" + std::to_string(universe));
    if (HasFailure()) return;  // one detailed failure beats 10k repeats
  }
}

TEST(LabelKernelsTest, GallopLowerBound) {
  const Set data{2, 4, 4, 8, 16, 32, 64, 100};
  // From the front.
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 0, 0), 0u);
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 0, 2), 0u);
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 0, 3), 1u);
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 0, 4), 1u);
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 0, 100), 7u);
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 0, 101), 8u);
  // Resuming mid-array keeps the lower-bound semantics.
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 3, 16), 4u);
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 5, 5), 5u);
  // `from` past the end is returned unchanged.
  EXPECT_EQ(GallopLowerBound(data.data(), data.size(), 8, 1), 8u);
  // Differential against std::lower_bound on random queries.
  Xoshiro256ss rng(0x676c62ULL);
  const Set hay = RandomSortedSet(rng, 500, 4096);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t needle = static_cast<uint32_t>(rng.NextBounded(5000));
    const size_t from = rng.NextBounded(hay.size() + 1);
    const size_t clamped =
        std::max(from, static_cast<size_t>(
                           std::lower_bound(hay.begin(), hay.end(), needle) -
                           hay.begin()));
    EXPECT_EQ(GallopLowerBound(hay.data(), hay.size(), from, needle),
              clamped)
        << "needle=" << needle << " from=" << from;
  }
}

TEST(LabelKernelsTest, ActiveKernelNameIsKnown) {
  const std::string name = ActiveIntersectKernelName();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "word64") << name;
#if !REACH_LABEL_KERNELS_X86
  EXPECT_EQ(name, "word64");
#endif
}

// ---------------------------------------------------------------------------
// Pool-backed PrunedTwoHop equivalence: the flat-pool + kernel query path
// must be observationally identical to the legacy nested-vector path —
// same answers, same Save bytes.

void ExpectIndexMatchesOracle(const PrunedTwoHop& index, const Digraph& g,
                              const std::string& context) {
  TransitiveClosure oracle;
  oracle.Build(g);
  index.PrepareConcurrentQueries(2);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      const bool expected = oracle.Query(s, t);
      ASSERT_EQ(index.Query(s, t), expected)
          << context << ": " << s << "->" << t;
      ASSERT_EQ(index.QueryInSlot(s, t, 1), expected)
          << context << " (slot): " << s << "->" << t;
    }
  }
}

std::string SaveToString(const PrunedTwoHop& index) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(index.Save(out));
  return out.str();
}

template <typename T>
void AppendPod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendVec(std::string& out, const std::vector<uint32_t>& v) {
  AppendPod(out, static_cast<uint64_t>(v.size()));
  if (!v.empty()) {
    out.append(reinterpret_cast<const char*>(v.data()),
               v.size() * sizeof(uint32_t));
  }
}

template <typename T>
bool TakePod(const std::string& in, size_t& pos, T* value) {
  if (pos + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

bool TakeVec(const std::string& in, size_t& pos, std::vector<uint32_t>* v) {
  uint64_t size = 0;
  if (!TakePod(in, pos, &size)) return false;
  if (pos + size * sizeof(uint32_t) > in.size()) return false;
  v->resize(size);
  if (size > 0) {
    std::memcpy(v->data(), in.data() + pos, size * sizeof(uint32_t));
    pos += size * sizeof(uint32_t);
  }
  return true;
}

// Decodes `bytes` as the versioned envelope (core/serialize.h) followed
// by the legacy payload (magic, n, rank, by_rank, n Lin vectors, n Lout
// vectors), then re-encodes the decoded payload fields with the
// pool-backed accessors and asserts byte equality — proving the sealed
// index still serializes exactly the pre-pool payload.
void ExpectLegacySaveLayout(const PrunedTwoHop& index,
                            const std::string& bytes, size_t n) {
  size_t pos = 0;
  uint32_t env_magic = 0, env_version = 0, name_len = 0;
  ASSERT_TRUE(TakePod(bytes, pos, &env_magic));
  EXPECT_EQ(env_magic, kEnvelopeMagic);
  ASSERT_TRUE(TakePod(bytes, pos, &env_version));
  EXPECT_EQ(env_version, kEnvelopeVersion);
  ASSERT_TRUE(TakePod(bytes, pos, &name_len));
  ASSERT_EQ(name_len, 3u);
  EXPECT_EQ(bytes.substr(pos, name_len), "pll");
  pos += name_len;
  const size_t payload_start = pos;
  uint64_t magic = 0, count = 0;
  ASSERT_TRUE(TakePod(bytes, pos, &magic));
  EXPECT_EQ(magic, 0x72656163682d3268ULL);  // "reach-2h"
  ASSERT_TRUE(TakePod(bytes, pos, &count));
  EXPECT_EQ(count, n);
  std::vector<uint32_t> rank, by_rank;
  ASSERT_TRUE(TakeVec(bytes, pos, &rank));
  ASSERT_TRUE(TakeVec(bytes, pos, &by_rank));
  ASSERT_EQ(rank.size(), n);
  ASSERT_EQ(by_rank.size(), n);
  for (uint32_t r = 0; r < n; ++r) EXPECT_EQ(rank[by_rank[r]], r);

  std::string rebuilt;
  AppendPod(rebuilt, magic);
  AppendPod(rebuilt, count);
  AppendVec(rebuilt, rank);
  AppendVec(rebuilt, by_rank);
  for (VertexId v = 0; v < n; ++v) {
    std::vector<uint32_t> lin;
    ASSERT_TRUE(TakeVec(bytes, pos, &lin));
    EXPECT_EQ(lin, index.InLabels(v)) << "Lin(" << v << ")";
    AppendVec(rebuilt, lin);
  }
  for (VertexId v = 0; v < n; ++v) {
    std::vector<uint32_t> lout;
    ASSERT_TRUE(TakeVec(bytes, pos, &lout));
    EXPECT_EQ(lout, index.OutLabels(v)) << "Lout(" << v << ")";
    AppendVec(rebuilt, lout);
  }
  EXPECT_EQ(pos, bytes.size()) << "trailing bytes after legacy layout";
  EXPECT_EQ(rebuilt, bytes.substr(payload_start));
}

TEST(PooledTwoHopEquivalenceTest, Figure1AndGenerators) {
  struct Case {
    std::string name;
    Digraph graph;
  };
  const Case cases[] = {
      {"figure1", figure1::PlainGraph()},
      {"random_digraph", RandomDigraph(48, 160, 0x51)},
      {"random_dag", RandomDag(48, 150, 0x52)},
      {"scale_free", ScaleFreeDag(64, 3, 0x53)},
      {"layered", LayeredDag(6, 8, 2, 0x54)},
      {"chain", Chain(20)},
      {"cycle", Cycle(12)},
  };
  for (const Case& c : cases) {
    PrunedTwoHop index;
    index.Build(c.graph);
    ExpectIndexMatchesOracle(index, c.graph, c.name);
    const std::string bytes = SaveToString(index);
    ExpectLegacySaveLayout(index, bytes, c.graph.NumVertices());
    // Save -> Load -> Save roundtrips to the same bytes.
    PrunedTwoHop loaded;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loaded.Load(in)) << c.name;
    EXPECT_EQ(SaveToString(loaded), bytes) << c.name;
    ExpectIndexMatchesOracle(loaded, c.graph, c.name + " (loaded)");
  }
}

TEST(PooledTwoHopEquivalenceTest, DeltaOverlayAfterInsertEdge) {
  // Post-seal inserts land in the delta overlay; answers must match an
  // oracle on the grown graph and Save must serialize the merged labels.
  const VertexId n = 40;
  std::vector<Edge> edges = RandomDigraph(n, 70, 0x55).Edges();
  const Digraph base = Digraph::FromEdges(n, edges);  // must outlive Build
  PrunedTwoHop index;
  index.Build(base);

  Xoshiro256ss rng(0x56);
  for (int step = 0; step < 20; ++step) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(u, v)}).ok());
    edges.push_back({u, v});
  }
  const Digraph grown = Digraph::FromEdges(n, edges);
  ExpectIndexMatchesOracle(index, grown, "delta overlay");

  const std::string bytes = SaveToString(index);
  ExpectLegacySaveLayout(index, bytes, n);
  PrunedTwoHop loaded;
  std::istringstream in(bytes, std::ios::binary);
  ASSERT_TRUE(loaded.Load(in));
  // A loaded index folds the delta into its pool; bytes stay stable.
  EXPECT_EQ(SaveToString(loaded), bytes);
  ExpectIndexMatchesOracle(loaded, grown, "delta overlay (loaded)");
}

TEST(PooledTwoHopEquivalenceTest, LabelAccessorsStaySorted) {
  const Digraph g = RandomDigraph(48, 160, 0x57);
  PrunedTwoHop index;
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate(
      {EdgeUpdate::Insert(0, 47), EdgeUpdate::Insert(3, 41)}).ok());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const std::vector<uint32_t> lin = index.InLabels(v);
    const std::vector<uint32_t> lout = index.OutLabels(v);
    EXPECT_TRUE(std::is_sorted(lin.begin(), lin.end())) << v;
    EXPECT_TRUE(std::is_sorted(lout.begin(), lout.end())) << v;
    EXPECT_EQ(std::adjacent_find(lin.begin(), lin.end()), lin.end()) << v;
  }
}

}  // namespace
}  // namespace reach
