#include "lcr/tree_lcr_index.h"

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "lcr/lcr_bfs.h"

namespace reach {
namespace {

TEST(TreeLcrIndexTest, PureTreeNeedsNoPartialGtc) {
  // A labeled tree: every path is a tree path; no hubs at all.
  const LabeledDigraph g =
      WithUniformLabels(RandomTree(40, 3), /*num_labels=*/3, 5);
  TreeLcrIndex index;
  index.Build(g);
  EXPECT_EQ(index.NumHubs(), 0u);
  EXPECT_EQ(index.PartialGtcEntries(), 0u);
  // Tree-path SPLS answers must match constrained BFS.
  SearchWorkspace ws;
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      for (LabelSet mask = 0; mask < 8; ++mask) {
        ASSERT_EQ(index.Query(s, t, mask),
                  LcrBfsReachability(g, s, t, mask, ws));
      }
    }
  }
}

TEST(TreeLcrIndexTest, NonTreeEdgeCreatesHub) {
  // Deterministic DFS from 0 makes 0->1, 0->2 tree arcs; 1->2 is non-tree
  // (2 is not 1's child), so 1 becomes a hub.
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      3, 2, {{0, 1, 0}, {0, 2, 0}, {1, 2, 1}});
  TreeLcrIndex index;
  index.Build(g);
  EXPECT_EQ(index.NumHubs(), 1u);
  EXPECT_GE(index.PartialGtcEntries(), 1u);
  EXPECT_TRUE(index.Query(1, 2, 0b10));   // via the non-tree arc
  EXPECT_FALSE(index.Query(1, 2, 0b01));  // no label-0 path 1 -> 2
}

TEST(TreeLcrIndexTest, ParallelArcWithDifferentLabelIsNonTree) {
  // 0 -l0-> 1 becomes the tree arc; 0 -l1-> 1 must be indexed as a
  // non-tree alternative.
  const LabeledDigraph g =
      LabeledDigraph::FromEdges(2, 2, {{0, 1, 0}, {0, 1, 1}});
  TreeLcrIndex index;
  index.Build(g);
  EXPECT_EQ(index.NumHubs(), 1u);
  EXPECT_TRUE(index.Query(0, 1, 0b01));
  EXPECT_TRUE(index.Query(0, 1, 0b10));
  EXPECT_FALSE(index.Query(1, 0, 0b11));
}

TEST(TreeLcrIndexTest, CaseTwoMiddleWithTreeInterior) {
  // Middle path whose interior uses a tree arc: 3 -nt-> 0 -t-> 1 -nt-> 4.
  // Tree from 0: 0->1 (l0); 3 and 4 are separate roots... force shape:
  const LabeledDigraph g = LabeledDigraph::FromEdges(
      5, 3, {{0, 1, 0}, {1, 2, 1}, {3, 0, 2}, {2, 4, 2}});
  TreeLcrIndex index;
  index.Build(g);
  // 3 -> 4 must compose: non-tree(3->0), tree(0->1->2), non-tree(2->4).
  EXPECT_TRUE(index.Query(3, 4, 0b111));
  EXPECT_FALSE(index.Query(3, 4, 0b011));
  EXPECT_FALSE(index.Query(4, 3, 0b111));
}

TEST(TreeLcrIndexTest, Figure1Queries) {
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  TreeLcrIndex index;
  index.Build(g);
  EXPECT_FALSE(index.Query(kA, kG, MakeLabelSet({kFriendOf, kFollows})));
  EXPECT_TRUE(index.Query(kL, kM, MakeLabelSet({kWorksFor})));
  EXPECT_TRUE(index.Query(kA, kM, MakeLabelSet({kFollows, kWorksFor})));
  EXPECT_FALSE(index.Query(kA, kM, MakeLabelSet({kWorksFor})));
}

class TreeLcrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeLcrPropertyTest, MatchesOracleOnDenseCyclicGraphs) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(16, 80, 3, seed);
  TreeLcrIndex index;
  index.Build(g);
  SearchWorkspace ws;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      for (LabelSet mask = 0; mask < 8; ++mask) {
        ASSERT_EQ(index.Query(s, t, mask),
                  LcrBfsReachability(g, s, t, mask, ws))
            << s << "->" << t << " mask=" << mask << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeLcrPropertyTest,
                         ::testing::Values(231, 232, 233, 234, 235, 236));

}  // namespace
}  // namespace reach
