#include "plain/dbl.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/rng.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(DblTest, FilterVerdictsAreNeverWrong) {
  for (uint64_t seed : {11, 12, 13}) {
    const Digraph g = RandomDigraph(50, 160, seed);
    Dbl index(seed);
    index.Build(g);
    TransitiveClosure oracle;
    oracle.Build(g);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        const int verdict = index.FilterVerdict(s, t);
        if (verdict > 0) {
          EXPECT_TRUE(oracle.Query(s, t)) << s << "->" << t;
        }
        if (verdict < 0) {
          EXPECT_FALSE(oracle.Query(s, t)) << s << "->" << t;
        }
      }
    }
  }
}

TEST(DblTest, QueriesAreExact) {
  for (uint64_t seed : {21, 22, 23}) {
    const Digraph g = RandomDigraph(48, 150, seed);
    Dbl index(seed);
    index.Build(g);
    TransitiveClosure oracle;
    oracle.Build(g);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(index.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
      }
    }
  }
}

TEST(DblTest, LandmarkHitSettlesHubQueriesPositively) {
  // Star through a hub: all queries s -> hub -> t must be settled by the
  // DL filter alone (the hub is the top-degree landmark).
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 20; ++v) edges.push_back({v, 0});
  for (VertexId v = 21; v <= 40; ++v) edges.push_back({0, v});
  const Digraph g = Digraph::FromEdges(41, edges);
  Dbl index;
  index.Build(g);
  EXPECT_GT(index.FilterVerdict(1, 25), 0);
  EXPECT_TRUE(index.Query(1, 25));
}

TEST(DblTest, InsertEdgeUpdatesAnswers) {
  Digraph g = Digraph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  Dbl index;
  index.Build(g);
  EXPECT_FALSE(index.Query(0, 5));
  const UpdateResult result = index.ApplyUpdate({EdgeUpdate::Insert(2, 3)});
  EXPECT_EQ(result.status, UpdateStatus::kApplied);
  EXPECT_TRUE(index.Query(0, 5));
  EXPECT_FALSE(index.Query(5, 0));
}

TEST(DblTest, InsertEdgeCreatingCycleKeepsFiltersSound) {
  const Digraph g = Chain(6);
  Dbl index;
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(5, 0)}).ok());
  TransitiveClosure oracle;
  oracle.Build(Cycle(6));
  for (VertexId s = 0; s < 6; ++s) {
    for (VertexId t = 0; t < 6; ++t) {
      EXPECT_TRUE(index.Query(s, t));
      const int verdict = index.FilterVerdict(s, t);
      EXPECT_GE(verdict, 0) << "filter false-negative after cycle insert";
    }
  }
}

class DblStreamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DblStreamTest, StreamedInsertsStayExactAndSound) {
  const uint64_t seed = GetParam();
  const VertexId n = 32;
  Xoshiro256ss rng(seed);
  std::vector<Edge> edges = RandomDigraph(n, 48, seed).Edges();
  Dbl index(seed);
  const Digraph base = Digraph::FromEdges(n, edges);
  index.Build(base);

  for (int step = 0; step < 30; ++step) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(u, v)}).ok());
    edges.push_back({u, v});
  }
  const Digraph full = Digraph::FromEdges(n, edges);
  TransitiveClosure oracle;
  oracle.Build(full);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
          << s << "->" << t << " seed " << seed;
      const int verdict = index.FilterVerdict(s, t);
      if (verdict > 0) {
        ASSERT_TRUE(oracle.Query(s, t));
      }
      if (verdict < 0) {
        ASSERT_FALSE(oracle.Query(s, t));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DblStreamTest,
                         ::testing::Values(131, 132, 133, 134));

TEST(DblTest, DeletesAreRejectedWithoutSideEffects) {
  // DBL is insert-only (Table 1): a batch carrying any delete must be
  // rejected atomically — including the valid insert ahead of it.
  const Digraph g = Chain(4);
  Dbl index;
  index.Build(g);
  EXPECT_FALSE(index.SupportsDeletions());
  const UpdateResult result = index.ApplyUpdate(
      {EdgeUpdate::Insert(3, 0), EdgeUpdate::Delete(1, 2)});
  EXPECT_EQ(result.status, UpdateStatus::kRejected);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.reason.empty());
  EXPECT_FALSE(index.Query(3, 0));  // the insert left no trace
  EXPECT_TRUE(index.Query(1, 2));
}

TEST(DblTest, IndexSizeIsFiveWordsPerVertex) {
  const Digraph g = Chain(100);
  Dbl index;
  index.Build(g);
  EXPECT_EQ(index.IndexSizeBytes(), 5 * 100 * sizeof(uint64_t));
}

}  // namespace
}  // namespace reach
