#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "plain/pruned_two_hop.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(SerializationTest, RoundTripPreservesAllAnswers) {
  const Digraph g = RandomDigraph(60, 200, 9);
  PrunedTwoHop original;
  original.Build(g);

  std::stringstream buffer;
  ASSERT_TRUE(original.Save(buffer));

  PrunedTwoHop loaded;
  ASSERT_TRUE(loaded.Load(buffer));
  EXPECT_EQ(loaded.TotalLabelEntries(), original.TotalLabelEntries());
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(loaded.Query(s, t), original.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(SerializationTest, RoundTripAfterInsertions) {
  const Digraph g = Digraph::FromEdges(6, {{0, 1}, {2, 3}, {4, 5}});
  PrunedTwoHop index;
  index.Build(g);
  index.InsertEdge(1, 2);
  index.InsertEdge(3, 4);

  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer));
  PrunedTwoHop loaded;
  ASSERT_TRUE(loaded.Load(buffer));
  EXPECT_TRUE(loaded.Query(0, 5));  // path through both inserted edges
  EXPECT_FALSE(loaded.Query(5, 0));
}

TEST(SerializationTest, LoadedIndexMatchesOracleWithoutGraph) {
  const Digraph g = RandomDigraph(40, 140, 21);
  TransitiveClosure oracle;
  oracle.Build(g);
  std::stringstream buffer;
  {
    PrunedTwoHop index;
    index.Build(g);
    ASSERT_TRUE(index.Save(buffer));
  }  // original index destroyed; the loaded one must stand alone
  PrunedTwoHop loaded;
  ASSERT_TRUE(loaded.Load(buffer));
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      ASSERT_EQ(loaded.Query(s, t), oracle.Query(s, t));
    }
  }
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "definitely not an index";
  PrunedTwoHop loaded;
  EXPECT_FALSE(loaded.Load(buffer));
}

TEST(SerializationTest, RejectsTruncatedStream) {
  const Digraph g = Chain(20);
  PrunedTwoHop index;
  index.Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer));
  const std::string full = buffer.str();
  for (size_t cut : {size_t{4}, full.size() / 2, full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    PrunedTwoHop loaded;
    EXPECT_FALSE(loaded.Load(truncated)) << "cut at " << cut;
  }
}

TEST(SerializationTest, RejectsCorruptedRanks) {
  const Digraph g = Chain(8);
  PrunedTwoHop index;
  index.Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer));
  std::string data = buffer.str();
  // rank_ entries start right after magic (8B) + count (8B) + size (8B);
  // smash one to an out-of-range value.
  data[24] = '\xff';
  data[25] = '\xff';
  data[26] = '\xff';
  data[27] = '\xff';
  std::stringstream corrupted(data);
  PrunedTwoHop loaded;
  EXPECT_FALSE(loaded.Load(corrupted));
}

TEST(SerializationTest, EmptyGraphRoundTrip) {
  const Digraph g = Digraph::FromEdges(0, {});
  PrunedTwoHop index;
  index.Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer));
  PrunedTwoHop loaded;
  EXPECT_TRUE(loaded.Load(buffer));
}

}  // namespace
}  // namespace reach
