#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/index_factory.h"
#include "core/serialize.h"
#include "graph/figure1.h"
#include "graph/generators.h"
#include "lcr/label_set.h"
#include "plain/pruned_two_hop.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(SerializationTest, RoundTripPreservesAllAnswers) {
  const Digraph g = RandomDigraph(60, 200, 9);
  PrunedTwoHop original;
  original.Build(g);

  std::stringstream buffer;
  ASSERT_TRUE(original.Save(buffer));

  PrunedTwoHop loaded;
  ASSERT_TRUE(loaded.Load(buffer));
  EXPECT_EQ(loaded.TotalLabelEntries(), original.TotalLabelEntries());
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(loaded.Query(s, t), original.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(SerializationTest, RoundTripAfterInsertions) {
  const Digraph g = Digraph::FromEdges(6, {{0, 1}, {2, 3}, {4, 5}});
  PrunedTwoHop index;
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate(
      {EdgeUpdate::Insert(1, 2), EdgeUpdate::Insert(3, 4)}).ok());

  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer));
  PrunedTwoHop loaded;
  ASSERT_TRUE(loaded.Load(buffer));
  EXPECT_TRUE(loaded.Query(0, 5));  // path through both inserted edges
  EXPECT_FALSE(loaded.Query(5, 0));
}

TEST(SerializationTest, LoadedIndexMatchesOracleWithoutGraph) {
  const Digraph g = RandomDigraph(40, 140, 21);
  TransitiveClosure oracle;
  oracle.Build(g);
  std::stringstream buffer;
  {
    PrunedTwoHop index;
    index.Build(g);
    ASSERT_TRUE(index.Save(buffer));
  }  // original index destroyed; the loaded one must stand alone
  PrunedTwoHop loaded;
  ASSERT_TRUE(loaded.Load(buffer));
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      ASSERT_EQ(loaded.Query(s, t), oracle.Query(s, t));
    }
  }
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "definitely not an index";
  PrunedTwoHop loaded;
  EXPECT_FALSE(loaded.Load(buffer));
}

TEST(SerializationTest, RejectsTruncatedStream) {
  const Digraph g = Chain(20);
  PrunedTwoHop index;
  index.Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer));
  const std::string full = buffer.str();
  for (size_t cut : {size_t{4}, full.size() / 2, full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    PrunedTwoHop loaded;
    EXPECT_FALSE(loaded.Load(truncated)) << "cut at " << cut;
  }
}

TEST(SerializationTest, RejectsCorruptedRanks) {
  const Digraph g = Chain(8);
  PrunedTwoHop index;
  index.Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer));
  std::string data = buffer.str();
  // rank_ entries start right after magic (8B) + count (8B) + size (8B);
  // smash one to an out-of-range value.
  data[24] = '\xff';
  data[25] = '\xff';
  data[26] = '\xff';
  data[27] = '\xff';
  std::stringstream corrupted(data);
  PrunedTwoHop loaded;
  EXPECT_FALSE(loaded.Load(corrupted));
}

// Save -> Load across *every* registered plain spec: serializable
// indexes must answer identically after the round trip; the rest must
// refuse with the typed kUnsupported status instead of writing or
// misreading bytes.
TEST(SerializationRosterTest, PlainRoundTripAcrossAllRegisteredSpecs) {
  const Digraph fig = figure1::PlainGraph();
  const Digraph rnd = RandomDigraph(48, 150, 0xC0FFEE);
  for (const std::string& spec : DefaultIndexSpecs(IndexFamily::kPlain)) {
    for (const Digraph* g : {&fig, &rnd}) {
      MadeIndex made = MakeIndex(spec);
      ASSERT_TRUE(made) << spec;
      made.plain->Build(*g);
      std::stringstream buffer;
      if (!made.caps.serializable) {
        EXPECT_FALSE(made.plain->Save(buffer)) << spec;
        const LoadResult result = made.plain->Load(buffer);
        EXPECT_EQ(result.status, LoadStatus::kUnsupported) << spec;
        continue;
      }
      ASSERT_TRUE(made.plain->Save(buffer)) << spec;
      MadeIndex fresh = MakeIndex(spec);
      const LoadResult result = fresh.plain->Load(buffer);
      ASSERT_TRUE(result) << spec << ": "
                          << LoadStatusMessage(result.status);
      for (VertexId s = 0; s < g->NumVertices(); ++s) {
        for (VertexId t = 0; t < g->NumVertices(); ++t) {
          ASSERT_EQ(fresh.plain->Query(s, t), made.plain->Query(s, t))
              << spec << ": " << s << "->" << t;
        }
      }
    }
  }
}

TEST(SerializationRosterTest, LcrRoundTripAcrossAllRegisteredSpecs) {
  const LabeledDigraph fig = figure1::LabeledGraph();
  const LabeledDigraph rnd = RandomLabeledDigraph(40, 130, 3, 0xBEEF);
  const std::vector<LabelSet> label_sets = {
      MakeLabelSet({}),     MakeLabelSet({0}),       MakeLabelSet({2}),
      MakeLabelSet({0, 1}), MakeLabelSet({0, 1, 2}),
  };
  for (const std::string& spec : DefaultIndexSpecs(IndexFamily::kLcr)) {
    for (const LabeledDigraph* g : {&fig, &rnd}) {
      MadeIndex made = MakeIndex(spec);
      ASSERT_TRUE(made) << spec;
      made.lcr->Build(*g);
      std::stringstream buffer;
      if (!made.caps.serializable) {
        EXPECT_FALSE(made.lcr->Save(buffer)) << spec;
        const LoadResult result = made.lcr->Load(buffer);
        EXPECT_EQ(result.status, LoadStatus::kUnsupported) << spec;
        continue;
      }
      ASSERT_TRUE(made.lcr->Save(buffer)) << spec;
      MadeIndex fresh = MakeIndex(spec);
      const LoadResult result = fresh.lcr->Load(buffer);
      ASSERT_TRUE(result) << spec << ": "
                          << LoadStatusMessage(result.status);
      for (VertexId s = 0; s < g->NumVertices(); ++s) {
        for (VertexId t = 0; t < g->NumVertices(); ++t) {
          for (const LabelSet& ls : label_sets) {
            ASSERT_EQ(fresh.lcr->Query(s, t, ls), made.lcr->Query(s, t, ls))
                << spec << ": " << s << "->" << t;
          }
        }
      }
    }
  }
}

TEST(SerializationEnvelopeTest, VersionMismatchIsRejectedWithTypedStatus) {
  const Digraph g = Chain(8);
  PrunedTwoHop index;
  index.Build(g);
  std::stringstream saved;
  ASSERT_TRUE(index.Save(saved));
  // Re-wrap the payload in an envelope from a future format revision.
  const std::string bytes = saved.str();
  const size_t envelope_size = 3 * sizeof(uint32_t) + index.Name().size();
  std::stringstream tampered;
  ASSERT_TRUE(WriteEnvelope(tampered, index.Name(), kEnvelopeVersion + 1));
  tampered << bytes.substr(envelope_size);
  PrunedTwoHop loaded;
  const LoadResult result = loaded.Load(tampered);
  EXPECT_EQ(result.status, LoadStatus::kBadVersion);
}

TEST(SerializationEnvelopeTest, WrongIndexNameIsRejected) {
  const Digraph g = Chain(8);
  PrunedTwoHop degree_order;  // envelope name "pll"
  degree_order.Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(degree_order.Save(buffer));
  // The labeled 2-hop (format "p2h") must refuse the "pll" stream.
  MadeIndex other = MakeIndex("lcr:pll");
  ASSERT_TRUE(other);
  const LoadResult result = other.lcr->Load(buffer);
  EXPECT_EQ(result.status, LoadStatus::kWrongIndex);
  EXPECT_EQ(result.detail, "pll");
}

TEST(SerializationEnvelopeTest, BadMagicIsTyped) {
  std::stringstream buffer;
  buffer << "not an index stream";
  PrunedTwoHop loaded;
  const LoadResult result = loaded.Load(buffer);
  EXPECT_EQ(result.status, LoadStatus::kBadMagic);
}

TEST(SerializationTest, EmptyGraphRoundTrip) {
  const Digraph g = Digraph::FromEdges(0, {});
  PrunedTwoHop index;
  index.Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer));
  PrunedTwoHop loaded;
  EXPECT_TRUE(loaded.Load(buffer));
}

}  // namespace
}  // namespace reach
