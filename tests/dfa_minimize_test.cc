#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/rng.h"
#include "rpq/dfa.h"
#include "rpq/nfa.h"
#include "rpq/regex_parser.h"

namespace reach {
namespace {

const std::vector<std::string> kNames = {"a", "b", "c"};

Dfa Compile(const std::string& pattern) {
  auto ast = ParseRegex(pattern, kNames);
  EXPECT_NE(ast, nullptr) << pattern;
  return BuildDfa(BuildNfa(*ast), 3);
}

// Random words over the 3-letter alphabet for language-equality checks.
std::vector<std::vector<Label>> RandomWords(size_t count, uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<std::vector<Label>> words = {{}};
  for (size_t i = 0; i < count; ++i) {
    std::vector<Label> word(rng.NextBounded(8));
    for (Label& l : word) l = static_cast<Label>(rng.NextBounded(3));
    words.push_back(std::move(word));
  }
  return words;
}

class MinimizeLanguageTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MinimizeLanguageTest, MinimizedAcceptsSameLanguage) {
  const Dfa dfa = Compile(GetParam());
  const Dfa minimized = MinimizeDfa(dfa);
  EXPECT_LE(minimized.NumStates(), dfa.NumStates());
  for (const auto& word : RandomWords(400, 11)) {
    ASSERT_EQ(dfa.Accepts(word), minimized.Accepts(word))
        << GetParam() << " word size " << word.size();
  }
}

TEST_P(MinimizeLanguageTest, TrimmedAcceptsSameLanguage) {
  const Dfa dfa = Compile(GetParam());
  const Dfa trimmed = TrimDfa(dfa);
  for (const auto& word : RandomWords(400, 12)) {
    ASSERT_EQ(dfa.Accepts(word), trimmed.Accepts(word)) << GetParam();
  }
}

TEST_P(MinimizeLanguageTest, MinimizeIsIdempotent) {
  const Dfa once = MinimizeDfa(Compile(GetParam()));
  const Dfa twice = MinimizeDfa(once);
  EXPECT_EQ(once.NumStates(), twice.NumStates());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, MinimizeLanguageTest,
    ::testing::Values("a", "(a|b)*", "(a.b)*", "a*.b*", "(a.b)+",
                      "a.(b|c)*.a", "((a|b).c)*", "(a|b)*.(a|b)*",
                      "(a*|b*)*", "a.b.c|a.b.c"));

TEST(MinimizeDfaTest, CollapsesRedundantUnion) {
  // (a|b)*.(a|b)* denotes the same language as (a|b)*, whose minimal DFA
  // has exactly one state.
  const Dfa redundant = MinimizeDfa(Compile("(a|b)*.(a|b)*"));
  const Dfa simple = MinimizeDfa(Compile("(a|b)*"));
  EXPECT_EQ(redundant.NumStates(), simple.NumStates());
  EXPECT_EQ(simple.NumStates(), 1u);
}

TEST(MinimizeDfaTest, DuplicatedAlternativeCollapses) {
  const Dfa dup = MinimizeDfa(Compile("a.b.c|a.b.c"));
  const Dfa single = MinimizeDfa(Compile("a.b.c"));
  EXPECT_EQ(dup.NumStates(), single.NumStates());
}

TEST(MinimizeDfaTest, PreservesAcceptingStart) {
  const Dfa star = MinimizeDfa(Compile("a*"));
  EXPECT_TRUE(star.accepting[star.start]);
  const Dfa plus = MinimizeDfa(Compile("a+"));
  EXPECT_FALSE(plus.accepting[plus.start]);
}

TEST(TrimDfaTest, CutsDoomedBranches) {
  // In a.b, reading 'b' first leads nowhere; the subset DFA may still
  // hold a live-looking transition chain for prefixes that cannot reach
  // acceptance after a wrong label. Verify trim leaves behavior intact
  // and never *adds* transitions.
  const Dfa dfa = Compile("a.b");
  const Dfa trimmed = TrimDfa(dfa);
  ASSERT_EQ(trimmed.NumStates(), dfa.NumStates());
  size_t live_before = 0, live_after = 0;
  for (size_t i = 0; i < dfa.transition.size(); ++i) {
    live_before += dfa.transition[i] != Dfa::kDead;
    live_after += trimmed.transition[i] != Dfa::kDead;
  }
  EXPECT_LE(live_after, live_before);
}

}  // namespace
}  // namespace reach
