#include "plain/chain_cover.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(ChainCoverTest, ChainGraphIsOneChain) {
  const Digraph g = Chain(20);
  ChainCover index;
  index.Build(g);
  EXPECT_EQ(index.NumChains(), 1u);
  EXPECT_TRUE(index.Query(0, 19));
  EXPECT_TRUE(index.Query(7, 7));
  EXPECT_FALSE(index.Query(19, 0));
  // One chain: the index is 3 words per vertex, far below the O(V^2) TC.
  EXPECT_EQ(index.IndexSizeBytes(), 3 * 20 * sizeof(uint32_t));
}

TEST(ChainCoverTest, AntichainIsAllChains) {
  const Digraph g = Digraph::FromEdges(5, {});  // no edges: 5 chains
  ChainCover index;
  index.Build(g);
  EXPECT_EQ(index.NumChains(), 5u);
  for (VertexId s = 0; s < 5; ++s) {
    for (VertexId t = 0; t < 5; ++t) {
      EXPECT_EQ(index.Query(s, t), s == t);
    }
  }
}

TEST(ChainCoverTest, DiamondNeedsTwoChains) {
  const Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  ChainCover index;
  index.Build(g);
  EXPECT_EQ(index.NumChains(), 2u);
  EXPECT_TRUE(index.Query(0, 3));
  EXPECT_TRUE(index.Query(2, 3));
  EXPECT_FALSE(index.Query(1, 2));
}

TEST(ChainCoverTest, DeepGraphsCompressWell) {
  // Layered deep DAG: the greedy cover is far from the Dilworth optimum
  // (width 8) but still compresses several-fold relative to vertices.
  const Digraph g = LayeredDag(64, 8, 2, 5);
  ChainCover index;
  index.Build(g);
  EXPECT_LT(index.NumChains(), g.NumVertices() / 4);
}

class ChainCoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChainCoverPropertyTest, MatchesOracleOnDags) {
  const uint64_t seed = GetParam();
  const Digraph g = RandomDag(50, 160, seed);
  ChainCover index;
  TransitiveClosure oracle;
  index.Build(g);
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
          << s << "->" << t << " seed " << seed;
    }
  }
}

TEST_P(ChainCoverPropertyTest, ChainsPartitionTheVertices) {
  const Digraph g = RandomDag(60, 200, GetParam() ^ 0xc);
  ChainCover index;
  index.Build(g);
  EXPECT_GE(index.NumChains(), 1u);
  EXPECT_LE(index.NumChains(), g.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainCoverPropertyTest,
                         ::testing::Values(241, 242, 243, 244));

}  // namespace
}  // namespace reach
