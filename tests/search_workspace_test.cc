#include "core/search_workspace.h"

#include <gtest/gtest.h>

namespace reach {
namespace {

TEST(SearchWorkspaceTest, MarksResetBetweenPrepares) {
  SearchWorkspace ws;
  ws.Prepare(10);
  EXPECT_TRUE(ws.MarkForward(3));
  EXPECT_FALSE(ws.MarkForward(3));
  EXPECT_TRUE(ws.IsForwardMarked(3));
  ws.Prepare(10);
  EXPECT_FALSE(ws.IsForwardMarked(3));
  EXPECT_TRUE(ws.MarkForward(3));
}

TEST(SearchWorkspaceTest, ForwardAndBackwardAreIndependent) {
  SearchWorkspace ws;
  ws.Prepare(5);
  ws.MarkForward(2);
  EXPECT_FALSE(ws.IsBackwardMarked(2));
  ws.MarkBackward(2);
  EXPECT_TRUE(ws.IsBackwardMarked(2));
  EXPECT_TRUE(ws.IsForwardMarked(2));
}

TEST(SearchWorkspaceTest, GrowsForLargerGraphs) {
  SearchWorkspace ws;
  ws.Prepare(4);
  ws.MarkForward(3);
  ws.Prepare(100);
  EXPECT_FALSE(ws.IsForwardMarked(99));
  EXPECT_TRUE(ws.MarkForward(99));
}

TEST(SearchWorkspaceTest, QueuesAreClearedByPrepare) {
  SearchWorkspace ws;
  ws.Prepare(4);
  ws.queue().push_back(1);
  ws.backward_queue().push_back(2);
  ws.Prepare(4);
  EXPECT_TRUE(ws.queue().empty());
  EXPECT_TRUE(ws.backward_queue().empty());
}

TEST(SearchWorkspaceTest, ManyEpochsStayCorrect) {
  SearchWorkspace ws;
  for (int round = 0; round < 1000; ++round) {
    ws.Prepare(8);
    EXPECT_FALSE(ws.IsForwardMarked(round % 8));
    ws.MarkForward(round % 8);
    EXPECT_TRUE(ws.IsForwardMarked(round % 8));
  }
}

}  // namespace
}  // namespace reach
