#include "lcr/label_set.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace reach {
namespace {

TEST(LabelSetTest, BitAndSubsetBasics) {
  EXPECT_EQ(LabelBit(0), 1u);
  EXPECT_EQ(LabelBit(3), 8u);
  EXPECT_TRUE(IsSubsetOf(0, 0));
  EXPECT_TRUE(IsSubsetOf(0b101, 0b111));
  EXPECT_FALSE(IsSubsetOf(0b101, 0b110));
  EXPECT_TRUE(IsSubsetOf(0, 0b1));
  EXPECT_EQ(LabelCount(0b1011), 3);
}

TEST(LabelSetTest, MakeLabelSet) {
  EXPECT_EQ(MakeLabelSet({0, 2}), 0b101u);
  EXPECT_EQ(MakeLabelSet({}), 0u);
}

TEST(LabelSetTest, ToStringUsesNames) {
  const std::vector<std::string> names = {"friendOf", "follows", "worksFor"};
  EXPECT_EQ(LabelSetToString(MakeLabelSet({0, 2}), names),
            "{friendOf, worksFor}");
  EXPECT_EQ(LabelSetToString(0, names), "{}");
  EXPECT_EQ(LabelSetToString(MakeLabelSet({5}), names), "{5}");
}

TEST(MinimalLabelSetsTest, SubsetMakesSupersetRedundant) {
  // The paper's §4.1 foundation: S1 ⊆ S2 makes S2 redundant.
  MinimalLabelSets sets;
  EXPECT_TRUE(sets.AddIfMinimal(0b11));
  EXPECT_FALSE(sets.AddIfMinimal(0b111));  // superset rejected
  EXPECT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets.AddIfMinimal(0b01));  // subset replaces
  EXPECT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets.sets()[0], 0b01u);
}

TEST(MinimalLabelSetsTest, IncomparableSetsCoexist) {
  MinimalLabelSets sets;
  EXPECT_TRUE(sets.AddIfMinimal(0b011));
  EXPECT_TRUE(sets.AddIfMinimal(0b101));
  EXPECT_TRUE(sets.AddIfMinimal(0b110));
  EXPECT_EQ(sets.size(), 3u);
}

TEST(MinimalLabelSetsTest, NewSubsetEvictsMultipleSupersets) {
  MinimalLabelSets sets;
  sets.AddIfMinimal(0b011);
  sets.AddIfMinimal(0b101);
  EXPECT_TRUE(sets.AddIfMinimal(0b001));  // subset of both
  EXPECT_EQ(sets.size(), 1u);
}

TEST(MinimalLabelSetsTest, EmptySetDominatesEverything) {
  MinimalLabelSets sets;
  sets.AddIfMinimal(0b10);
  EXPECT_TRUE(sets.AddIfMinimal(0));
  EXPECT_EQ(sets.size(), 1u);
  EXPECT_FALSE(sets.AddIfMinimal(0b1));
  EXPECT_TRUE(sets.ContainsSubsetOf(0));
}

TEST(MinimalLabelSetsTest, ContainsSubsetOfIsTheQueryTest) {
  MinimalLabelSets sets;
  sets.AddIfMinimal(0b011);
  sets.AddIfMinimal(0b100);
  EXPECT_TRUE(sets.ContainsSubsetOf(0b011));
  EXPECT_TRUE(sets.ContainsSubsetOf(0b111));
  EXPECT_TRUE(sets.ContainsSubsetOf(0b110));  // 0b100 fits
  EXPECT_FALSE(sets.ContainsSubsetOf(0b001));
  EXPECT_FALSE(sets.ContainsSubsetOf(0b010));
}

TEST(MinimalLabelSetsTest, DuplicateRejected) {
  MinimalLabelSets sets;
  EXPECT_TRUE(sets.AddIfMinimal(0b10));
  EXPECT_FALSE(sets.AddIfMinimal(0b10));
  EXPECT_EQ(sets.size(), 1u);
}

TEST(MinimalLabelSetsTest, AlwaysAnAntichain) {
  MinimalLabelSets sets;
  // Add all 4-bit masks in an adversarial order.
  for (LabelSet m : {0b1111u, 0b0111u, 0b1010u, 0b0011u, 0b0101u, 0b1100u,
                     0b0110u, 0b1001u}) {
    sets.AddIfMinimal(m);
  }
  for (LabelSet a : sets.sets()) {
    for (LabelSet b : sets.sets()) {
      if (a != b) {
        EXPECT_FALSE(IsSubsetOf(a, b)) << a << " subset of " << b;
      }
    }
  }
}

}  // namespace
}  // namespace reach
