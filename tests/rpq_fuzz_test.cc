// Randomized differential fuzzing of the whole RPQ pipeline: generated
// regexes are run through four independent engines — NFA simulation, raw
// subset DFA, minimized+trimmed DFA, and the two product evaluators — and
// all must agree on random words and random graph queries.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/rng.h"
#include "rpq/dfa.h"
#include "rpq/nfa.h"
#include "rpq/regex_parser.h"
#include "rpq/rpq_evaluator.h"

namespace reach {
namespace {

const std::vector<std::string> kNames = {"a", "b", "c"};

// Random regex generator over {a, b, c} with bounded depth.
std::string RandomPattern(Xoshiro256ss& rng, int depth) {
  if (depth <= 0 || rng.NextBounded(4) == 0) {
    return kNames[rng.NextBounded(3)];
  }
  switch (rng.NextBounded(4)) {
    case 0:
      return "(" + RandomPattern(rng, depth - 1) + "." +
             RandomPattern(rng, depth - 1) + ")";
    case 1:
      return "(" + RandomPattern(rng, depth - 1) + "|" +
             RandomPattern(rng, depth - 1) + ")";
    case 2:
      return "(" + RandomPattern(rng, depth - 1) + ")*";
    default:
      return "(" + RandomPattern(rng, depth - 1) + ")+";
  }
}

class RpqFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RpqFuzzTest, AllAutomataAgreeOnRandomWords) {
  Xoshiro256ss rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const std::string pattern = RandomPattern(rng, 3);
    auto ast = ParseRegex(pattern, kNames);
    ASSERT_NE(ast, nullptr) << pattern;
    const Nfa nfa = BuildNfa(*ast);
    const Dfa dfa = BuildDfa(nfa, 3);
    const Dfa optimized = TrimDfa(MinimizeDfa(dfa));
    for (int w = 0; w < 30; ++w) {
      std::vector<Label> word(rng.NextBounded(7));
      for (Label& l : word) l = static_cast<Label>(rng.NextBounded(3));
      const bool expected = nfa.Accepts(word);
      ASSERT_EQ(dfa.Accepts(word), expected) << pattern;
      ASSERT_EQ(optimized.Accepts(word), expected) << pattern;
    }
  }
}

TEST_P(RpqFuzzTest, EvaluatorsAgreeOnRandomGraphQueries) {
  Xoshiro256ss rng(GetParam() ^ 0xf2);
  const LabeledDigraph g = RandomLabeledDigraph(14, 60, 3, GetParam());
  SearchWorkspace fwd_ws, bidi_ws;
  for (int round = 0; round < 12; ++round) {
    const std::string pattern = RandomPattern(rng, 3);
    auto ast = ParseRegex(pattern, kNames);
    ASSERT_NE(ast, nullptr) << pattern;
    const Dfa dfa = TrimDfa(MinimizeDfa(BuildDfa(BuildNfa(*ast), 3)));
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        const bool forward = RpqProductBfs(g, s, t, dfa, fwd_ws);
        ASSERT_EQ(RpqBidirectionalBfs(g, s, t, dfa, bidi_ws), forward)
            << pattern << " " << s << "->" << t;
      }
    }
  }
}

TEST_P(RpqFuzzTest, RoundTripThroughToString) {
  // Parsing the canonical rendering must preserve the language.
  Xoshiro256ss rng(GetParam() ^ 0x77);
  for (int round = 0; round < 25; ++round) {
    const std::string pattern = RandomPattern(rng, 3);
    auto ast = ParseRegex(pattern, kNames);
    ASSERT_NE(ast, nullptr);
    const std::string rendered = RegexToString(*ast, kNames);
    auto reparsed = ParseRegex(rendered, kNames);
    ASSERT_NE(reparsed, nullptr) << rendered;
    const Nfa a = BuildNfa(*ast);
    const Nfa b = BuildNfa(*reparsed);
    for (int w = 0; w < 20; ++w) {
      std::vector<Label> word(rng.NextBounded(6));
      for (Label& l : word) l = static_cast<Label>(rng.NextBounded(3));
      ASSERT_EQ(a.Accepts(word), b.Accepts(word))
          << pattern << " vs " << rendered;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpqFuzzTest,
                         ::testing::Values(301, 302, 303, 304));

}  // namespace
}  // namespace reach
