// Pathological labeled graphs swept against the constrained-BFS oracle
// for every LCR index.

#include <string>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lcr/lcr_bfs.h"
#include "core/index_factory.h"

namespace reach {
namespace {

LabeledDigraph SingleLabelEverything() {
  // All edges share one label: constraint either admits everything or
  // only the empty path.
  return WithUniformLabels(RandomDigraph(14, 50, 1), 1, 2);
}

LabeledDigraph ParallelRainbow() {
  // Every adjacent pair connected by one edge per label.
  std::vector<LabeledEdge> edges;
  for (VertexId v = 0; v + 1 < 6; ++v) {
    for (Label l = 0; l < 3; ++l) edges.push_back({v, v + 1, l});
  }
  return LabeledDigraph::FromEdges(6, 3, edges);
}

LabeledDigraph LabeledSelfLoops() {
  std::vector<LabeledEdge> edges;
  for (VertexId v = 0; v < 8; ++v) {
    edges.push_back({v, v, static_cast<Label>(v % 3)});
    if (v + 1 < 8) edges.push_back({v, v + 1, static_cast<Label>(v % 3)});
  }
  return LabeledDigraph::FromEdges(8, 3, edges);
}

LabeledDigraph AlternatingCycle() {
  // Even cycle with strictly alternating labels: single-label constraints
  // admit nothing beyond direct hops.
  std::vector<LabeledEdge> edges;
  for (VertexId v = 0; v < 8; ++v) {
    edges.push_back({v, static_cast<VertexId>((v + 1) % 8),
                     static_cast<Label>(v % 2)});
  }
  return LabeledDigraph::FromEdges(8, 2, edges);
}

LabeledDigraph LabeledCompleteBipartite() {
  std::vector<LabeledEdge> edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 5; v < 10; ++v) {
      edges.push_back({u, v, static_cast<Label>((u + v) % 4)});
    }
  }
  return LabeledDigraph::FromEdges(10, 4, edges);
}

LabeledDigraph TwoDisconnectedLabeledCycles() {
  std::vector<LabeledEdge> edges;
  for (VertexId v = 0; v < 5; ++v) {
    edges.push_back({v, static_cast<VertexId>((v + 1) % 5), 0});
    edges.push_back({static_cast<VertexId>(5 + v),
                     static_cast<VertexId>(5 + (v + 1) % 5), 1});
  }
  return LabeledDigraph::FromEdges(10, 2, edges);
}

class LcrEdgeCaseTest : public ::testing::TestWithParam<std::string> {
 protected:
  void ExpectExact(const LabeledDigraph& g, const std::string& context) {
    auto index = MakeIndex(GetParam()).lcr;
    ASSERT_NE(index, nullptr);
    index->Build(g);
    SearchWorkspace ws;
    const LabelSet all_masks = LabelSet{1} << g.NumLabels();
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        for (LabelSet mask = 0; mask < all_masks; ++mask) {
          ASSERT_EQ(index->Query(s, t, mask),
                    LcrBfsReachability(g, s, t, mask, ws))
              << context << ": " << index->Name() << " on " << s << "->"
              << t << " mask " << mask;
        }
      }
    }
  }
};

TEST_P(LcrEdgeCaseTest, SingleLabel) {
  ExpectExact(SingleLabelEverything(), "single-label");
}

TEST_P(LcrEdgeCaseTest, ParallelRainbow) {
  ExpectExact(ParallelRainbow(), "rainbow");
}

TEST_P(LcrEdgeCaseTest, LabeledSelfLoops) {
  ExpectExact(LabeledSelfLoops(), "self-loops");
}

TEST_P(LcrEdgeCaseTest, AlternatingCycle) {
  ExpectExact(AlternatingCycle(), "alternating-cycle");
}

TEST_P(LcrEdgeCaseTest, CompleteBipartite) {
  ExpectExact(LabeledCompleteBipartite(), "bipartite");
}

TEST_P(LcrEdgeCaseTest, DisconnectedCycles) {
  ExpectExact(TwoDisconnectedLabeledCycles(), "two-cycles");
}

INSTANTIATE_TEST_SUITE_P(
    AllLcrIndexes, LcrEdgeCaseTest,
    ::testing::ValuesIn(DefaultIndexSpecs(IndexFamily::kLcr)), [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace reach
