// The shared thread-pool substrate (src/par/): pool lifecycle, the
// ParallelFor* helpers' coverage and exception contracts, nested-call
// safety, and the REACH_THREADS resolution chain.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "par/parallel_for.h"
#include "par/thread_pool.h"

namespace reach {
namespace {

TEST(ThreadPoolTest, DrainsQueuedTasksOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.NumThreads(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool drains, then joins.
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.NumThreads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  // Rely on the destructor's drain to observe completion.
  // (scope exit)
}

TEST(ThreadPoolTest, WorkerIndexIsSetInsideWorkersOnly) {
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  std::atomic<int> seen_index{-2};
  {
    ThreadPool pool(2);
    pool.Submit(
        [&seen_index] { seen_index = ThreadPool::CurrentWorkerIndex(); });
  }
  EXPECT_GE(seen_index.load(), 0);
  EXPECT_LT(seen_index.load(), 2);
}

TEST(ParallelForTest, WorkersRunEveryIdExactlyOnce) {
  constexpr size_t kWorkers = 7;  // deliberately above this box's pool size
  std::vector<std::atomic<int>> hits(kWorkers);
  for (auto& h : hits) h = 0;
  ParallelForWorkers(kWorkers, [&hits](size_t worker) {
    hits[worker].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kWorkers; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, WorkerExceptionIsRethrownAfterAllFinish) {
  std::atomic<int> finished{0};
  EXPECT_THROW(
      ParallelForWorkers(4,
                         [&finished](size_t worker) {
                           if (worker == 2) throw std::runtime_error("boom");
                           finished.fetch_add(1, std::memory_order_relaxed);
                         }),
      std::runtime_error);
  // Every non-throwing worker completed before the rethrow.
  EXPECT_EQ(finished.load(), 3);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  // Outer ids beyond 0 execute on pool workers; their nested calls must
  // run inline (a worker blocking on pool work would deadlock a
  // single-thread pool, which is exactly what CI machines may have).
  constexpr size_t kOuter = 4, kInner = 3;
  std::atomic<int> inner_runs{0};
  ParallelForWorkers(kOuter, [&inner_runs](size_t) {
    ParallelForWorkers(kInner, [&inner_runs](size_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_runs.load(), static_cast<int>(kOuter * kInner));
}

TEST(ParallelForTest, NestedSubmitFromWorkerDoesNotDeadlock) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.Submit([&pool, &ran] {
      // Submission from inside a worker goes to its own deque.
      pool.Submit([&ran] { ran.fetch_add(1); });
      ran.fetch_add(1);
    });
  }
  EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelForTest, ChunkedCoversRangeExactlyOnce) {
  constexpr size_t kN = 1000;
  for (const size_t grain : {0ul, 1ul, 7ul, 5000ul}) {
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h = 0;
    ParallelForChunked(
        0, kN,
        [&hits](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        /*num_threads=*/4, grain);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " grain=" << grain;
    }
  }
}

TEST(ParallelForTest, ChunkedEmptyRangeNeverInvokes) {
  std::atomic<int> calls{0};
  ParallelForChunked(
      10, 10, [&calls](size_t, size_t) { calls.fetch_add(1); },
      /*num_threads=*/4);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, IndexVariantCoversRange) {
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h = 0;
  ParallelFor(
      0, kN,
      [&hits](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*num_threads=*/8, /*grain=*/1);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ChunkedExceptionPropagates) {
  EXPECT_THROW(ParallelForChunked(
                   0, 100,
                   [](size_t b, size_t) {
                     if (b < 100) throw std::runtime_error("chunk");
                   },
                   /*num_threads=*/2),
               std::runtime_error);
}

TEST(ThreadConfigTest, ParseThreadsValueFallsBackOnGarbage) {
  using internal::ParseThreadsValue;
  EXPECT_EQ(ParseThreadsValue(nullptr, 5), 5u);
  EXPECT_EQ(ParseThreadsValue("", 5), 5u);
  EXPECT_EQ(ParseThreadsValue("abc", 5), 5u);
  EXPECT_EQ(ParseThreadsValue("0", 5), 5u);
  EXPECT_EQ(ParseThreadsValue("7", 5), 7u);
}

TEST(ThreadConfigTest, ResolveThreadsHonorsOverride) {
  EXPECT_EQ(ResolveThreads(5), 5u);
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3u);
  EXPECT_EQ(ResolveThreads(0), 3u);
  SetDefaultThreads(0);  // restore environment/hardware default
  EXPECT_GE(DefaultThreads(), 1u);
}

}  // namespace
}  // namespace reach
