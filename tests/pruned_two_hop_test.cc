#include "plain/pruned_two_hop.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/rng.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

void ExpectMatchesOracle(const PrunedTwoHop& index,
                         const TransitiveClosure& oracle, size_t n,
                         const std::string& context) {
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
          << context << ": " << s << "->" << t;
    }
  }
}

class OrderTest : public ::testing::TestWithParam<VertexOrder> {};

TEST_P(OrderTest, AllOrdersAreExactOnCyclicGraphs) {
  for (uint64_t seed : {91, 92, 93}) {
    const Digraph g = RandomDigraph(44, 140, seed);
    PrunedTwoHop index(GetParam(), seed);
    index.Build(g);
    TransitiveClosure oracle;
    oracle.Build(g);
    ExpectMatchesOracle(index, oracle, g.NumVertices(),
                        "seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderTest,
                         ::testing::Values(VertexOrder::kDegree,
                                           VertexOrder::kTopological,
                                           VertexOrder::kReverseDegree,
                                           VertexOrder::kRandom));

TEST(PrunedTwoHopTest, LabelsAreSortedAndBounded) {
  const Digraph g = RandomDigraph(60, 200, 5);
  PrunedTwoHop index(VertexOrder::kDegree);
  index.Build(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto& lin = index.InLabels(v);
    const auto& lout = index.OutLabels(v);
    EXPECT_TRUE(std::is_sorted(lin.begin(), lin.end()));
    EXPECT_TRUE(std::is_sorted(lout.begin(), lout.end()));
    for (uint32_t r : lin) EXPECT_LT(r, g.NumVertices());
    for (uint32_t r : lout) EXPECT_LT(r, g.NumVertices());
  }
}

TEST(PrunedTwoHopTest, DegreeOrderBeatsReverseDegreeOnScaleFree) {
  // §3.2: the choice of total order drives index size; hubs first is the
  // DL/PLL heuristic. On a hub-heavy graph it must not lose to hubs-last.
  const Digraph g = ScaleFreeDag(300, 3, 11);
  PrunedTwoHop good(VertexOrder::kDegree);
  PrunedTwoHop bad(VertexOrder::kReverseDegree);
  good.Build(g);
  bad.Build(g);
  EXPECT_LT(good.TotalLabelEntries(), bad.TotalLabelEntries());
}

TEST(PrunedTwoHopTest, SccMembersShareHighestRankedHop) {
  const Digraph g = Cycle(8);
  PrunedTwoHop index(VertexOrder::kDegree);
  index.Build(g);
  for (VertexId s = 0; s < 8; ++s) {
    for (VertexId t = 0; t < 8; ++t) EXPECT_TRUE(index.Query(s, t));
  }
  // One hop covers the cycle: labels stay linear, not quadratic.
  EXPECT_LE(index.TotalLabelEntries(), 2 * 8u);
}

TEST(PrunedTwoHopTest, InsertEdgeConnectsComponents) {
  Digraph g = Digraph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  PrunedTwoHop index;
  index.Build(g);
  EXPECT_FALSE(index.Query(0, 5));
  const UpdateResult result =
      index.ApplyUpdate({EdgeUpdate::Insert(2, 3)});
  EXPECT_EQ(result.status, UpdateStatus::kApplied);
  EXPECT_EQ(result.applied, 1u);
  EXPECT_TRUE(index.Query(0, 5));
  EXPECT_TRUE(index.Query(2, 3));
  EXPECT_TRUE(index.Query(1, 4));
  EXPECT_FALSE(index.Query(5, 0));
}

TEST(PrunedTwoHopTest, InsertEdgeCreatingCycle) {
  const Digraph g = Chain(5);
  PrunedTwoHop index;
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(4, 0)}).ok());
  for (VertexId s = 0; s < 5; ++s) {
    for (VertexId t = 0; t < 5; ++t) {
      EXPECT_TRUE(index.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(PrunedTwoHopTest, InsertExistingEdgeIsNoop) {
  const Digraph g = Chain(4);
  PrunedTwoHop index;
  index.Build(g);
  const size_t before = index.TotalLabelEntries();
  const UpdateResult result =
      index.ApplyUpdate({EdgeUpdate::Insert(0, 1)});  // already present
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.ignored, 1u);
  EXPECT_EQ(index.TotalLabelEntries(), before);
}

TEST(PrunedTwoHopTest, RejectedBatchLeavesNoTrace) {
  const Digraph g = Chain(4);
  PrunedTwoHop index;
  index.Build(g);
  // Second update is out of range: validate-first must reject the whole
  // batch, including the in-range insert ahead of it.
  const UpdateResult result = index.ApplyUpdate(
      {EdgeUpdate::Insert(3, 0), EdgeUpdate::Insert(0, 99)});
  EXPECT_EQ(result.status, UpdateStatus::kRejected);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.reason.empty());
  EXPECT_FALSE(index.Query(3, 0));
}

class InsertStreamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InsertStreamTest, IncrementalMatchesRebuiltIndex) {
  const uint64_t seed = GetParam();
  const VertexId n = 36;
  Xoshiro256ss rng(seed);
  std::vector<Edge> base_edges = RandomDigraph(n, 60, seed).Edges();
  Digraph base = Digraph::FromEdges(n, base_edges);

  PrunedTwoHop incremental(VertexOrder::kDegree);
  incremental.Build(base);

  std::vector<Edge> all_edges = base_edges;
  for (int step = 0; step < 25; ++step) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    ASSERT_TRUE(incremental.ApplyUpdate({EdgeUpdate::Insert(u, v)}).ok());
    all_edges.push_back({u, v});
  }
  const Digraph full = Digraph::FromEdges(n, all_edges);
  TransitiveClosure oracle;
  oracle.Build(full);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      ASSERT_EQ(incremental.Query(s, t), oracle.Query(s, t))
          << s << "->" << t << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InsertStreamTest,
                         ::testing::Values(111, 222, 333, 444, 555));

TEST(PrunedTwoHopTest, DeleteEdgeIncrementally) {
  const Digraph g = Chain(5);
  PrunedTwoHop index;
  index.Build(g);
  EXPECT_TRUE(index.Query(0, 4));
  const UpdateResult del = index.ApplyUpdate({EdgeUpdate::Delete(2, 3)});
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.applied, 1u);
  EXPECT_EQ(del.damage, 1u);  // a chain has no detour: damaging delete
  EXPECT_FALSE(index.Query(0, 4));
  EXPECT_TRUE(index.Query(0, 2));
  EXPECT_TRUE(index.Query(3, 4));
  // Re-inserting the tombstoned edge resurrects it (labels still cover
  // it), and deleting again severs it once more.
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Insert(2, 3)}).ok());
  EXPECT_TRUE(index.Query(0, 4));
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Delete(2, 3)}).ok());
  EXPECT_FALSE(index.Query(0, 4));
}

TEST(PrunedTwoHopTest, RedundantDeleteCausesNoDamage) {
  // The arc 0->1 has a detour 0->2->1, so deleting it leaves the
  // reachability relation untouched and the local-detour search absorbs
  // the tombstone without marking any damage.
  const Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {2, 1}, {1, 3}});
  PrunedTwoHop index;
  index.Build(g);
  const UpdateResult del = index.ApplyUpdate({EdgeUpdate::Delete(0, 1)});
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.damage, 0u);  // locally redundant: tombstone only
  EXPECT_TRUE(index.Query(0, 1));  // still reachable via the detour
  EXPECT_TRUE(index.Query(0, 3));
  EXPECT_TRUE(index.Query(2, 3));
}

TEST(PrunedTwoHopTest, RebuildFromUpdatesClearsDamage) {
  const Digraph g = Chain(6);
  PrunedTwoHop index(VertexOrder::kDegree, 7, 0, {},
                     /*staleness_budget=*/2);
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Delete(1, 2)}).ok());
  const UpdateResult second =
      index.ApplyUpdate({EdgeUpdate::Delete(3, 4)});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.damage, 2u);
  ASSERT_TRUE(index.RebuildFromUpdates());
  EXPECT_EQ(index.Damage(), 0u);
  EXPECT_FALSE(index.Query(0, 5));
  EXPECT_FALSE(index.Query(1, 2));
  EXPECT_TRUE(index.Query(2, 3));
  EXPECT_TRUE(index.Query(4, 5));
}

TEST(PrunedTwoHopTest, StalenessBudgetRecommendsRebuild) {
  const Digraph g = Chain(8);
  PrunedTwoHop index(VertexOrder::kDegree, 7, 0, {},
                     /*staleness_budget=*/1);
  index.Build(g);
  ASSERT_TRUE(index.ApplyUpdate({EdgeUpdate::Delete(1, 2)}).ok());
  const UpdateResult over = index.ApplyUpdate({EdgeUpdate::Delete(5, 6)});
  EXPECT_EQ(over.status, UpdateStatus::kDeferredRebuild);
  EXPECT_TRUE(over.rebuild_recommended);
  // Answers stay exact even past the budget: the rebuild is advisory.
  EXPECT_FALSE(index.Query(0, 7));
  EXPECT_TRUE(index.Query(2, 5));
}

TEST(PrunedTwoHopTest, NamesReflectOrders) {
  EXPECT_EQ(PrunedTwoHop(VertexOrder::kDegree).Name(), "pll");
  EXPECT_EQ(PrunedTwoHop(VertexOrder::kTopological).Name(), "tfl");
  EXPECT_EQ(PrunedTwoHop(VertexOrder::kRandom).Name(), "tol(random)");
}

}  // namespace
}  // namespace reach
