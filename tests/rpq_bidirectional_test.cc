#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "rpq/nfa.h"
#include "rpq/regex_parser.h"
#include "rpq/rpq_evaluator.h"

namespace reach {
namespace {

const std::vector<std::string> kAbc = {"a", "b", "c"};

Dfa Compile(const std::string& pattern, Label num_labels = 3) {
  auto ast = ParseRegex(pattern, kAbc);
  EXPECT_NE(ast, nullptr) << pattern;
  return TrimDfa(MinimizeDfa(BuildDfa(BuildNfa(*ast), num_labels)));
}

TEST(RpqBidirectionalTest, Figure1Queries) {
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  SearchWorkspace ws;
  auto fig_dfa = [&](const std::string& pattern) {
    auto ast = ParseRegex(pattern, g.label_names());
    EXPECT_NE(ast, nullptr);
    return TrimDfa(MinimizeDfa(BuildDfa(BuildNfa(*ast), kNumLabels)));
  };
  const Dfa social = fig_dfa("(friendOf|follows)*");
  EXPECT_FALSE(RpqBidirectionalBfs(g, kA, kG, social, ws));
  const Dfa concat = fig_dfa("(worksFor.friendOf)*");
  EXPECT_TRUE(RpqBidirectionalBfs(g, kL, kB, concat, ws));
  EXPECT_TRUE(RpqBidirectionalBfs(g, kC, kC, social, ws));  // empty word
}

class RpqBidiPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RpqBidiPropertyTest, AgreesWithForwardEverywhere) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(18, 80, 3, seed);
  SearchWorkspace fwd_ws, bidi_ws;
  for (const char* pattern :
       {"(a|b)*", "(a.b)*", "a+.b", "a*.(b|c).a*", "c", "(a|b|c)+"}) {
    const Dfa dfa = Compile(pattern);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(RpqBidirectionalBfs(g, s, t, dfa, bidi_ws),
                  RpqProductBfs(g, s, t, dfa, fwd_ws))
            << pattern << " " << s << "->" << t << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpqBidiPropertyTest,
                         ::testing::Values(281, 282, 283, 284));

TEST(RpqBidirectionalTest, VisitsFewerStatesOnSelectiveTargets) {
  // Wide fan from s, but the constraint's final label is rare near t:
  // the backward frontier settles negatives cheaply.
  std::vector<LabeledEdge> edges;
  for (VertexId v = 2; v < 800; ++v) edges.push_back({0, v, 0});
  edges.push_back({1, 2, 1});  // t = 1 has no incoming edges at all
  const LabeledDigraph g = LabeledDigraph::FromEdges(800, 2, edges);
  const Dfa dfa = Compile("(a|b)*", 2);
  SearchWorkspace ws;
  size_t forward_visits = 0, bidi_visits = 0;
  EXPECT_FALSE(RpqProductBfs(g, 0, 1, dfa, ws, &forward_visits));
  EXPECT_FALSE(RpqBidirectionalBfs(g, 0, 1, dfa, ws, &bidi_visits));
  EXPECT_LT(bidi_visits, forward_visits / 10);
}

TEST(RpqBidirectionalTest, NoAcceptingStatesMeansFalse) {
  // A pattern over label c on a graph with only a/b edges: after trimming
  // the DFA may keep states, but no product path exists.
  const LabeledDigraph g = RandomLabeledDigraph(10, 40, 2, 3);
  const Dfa dfa = Compile("c.c", 3);
  SearchWorkspace ws;
  for (VertexId s = 0; s < 10; ++s) {
    EXPECT_FALSE(RpqBidirectionalBfs(g, s, (s + 1) % 10, dfa, ws));
  }
}

}  // namespace
}  // namespace reach
