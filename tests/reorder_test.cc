#include "graph/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "core/reordering_index.h"
#include "graph/figure1.h"
#include "graph/generators.h"
#include "plain/pruned_two_hop.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

const ReorderStrategy kAllStrategies[] = {
    ReorderStrategy::kNone, ReorderStrategy::kDegree, ReorderStrategy::kBfs};

void ExpectValidPermutation(const VertexPermutation& perm, size_t n) {
  ASSERT_EQ(perm.old_to_new.size(), n);
  ASSERT_EQ(perm.new_to_old.size(), n);
  std::vector<char> seen(n, 0);
  for (VertexId old_id = 0; old_id < n; ++old_id) {
    const VertexId new_id = perm.ToNew(old_id);
    ASSERT_LT(new_id, n);
    EXPECT_FALSE(seen[new_id]) << "new id " << new_id << " assigned twice";
    seen[new_id] = 1;
    EXPECT_EQ(perm.ToOld(new_id), old_id);
  }
}

TEST(ReorderTest, ParseAndName) {
  EXPECT_EQ(ParseReorderStrategy("none"), ReorderStrategy::kNone);
  EXPECT_EQ(ParseReorderStrategy("deg"), ReorderStrategy::kDegree);
  EXPECT_EQ(ParseReorderStrategy("bfs"), ReorderStrategy::kBfs);
  EXPECT_EQ(ParseReorderStrategy("degree"), std::nullopt);
  EXPECT_EQ(ParseReorderStrategy(""), std::nullopt);
  for (ReorderStrategy s : kAllStrategies) {
    EXPECT_EQ(ParseReorderStrategy(ReorderStrategyName(s)), s);
  }
}

TEST(ReorderTest, PermutationsAreBijections) {
  const Digraph graphs[] = {
      figure1::PlainGraph(),
      RandomDigraph(50, 170, 0x71),
      ScaleFreeDag(80, 3, 0x72),
      Digraph::FromEdges(5, {}),  // edgeless: every vertex is its own BFS root
      Digraph(),                  // empty graph
  };
  for (const Digraph& g : graphs) {
    for (ReorderStrategy s : kAllStrategies) {
      SCOPED_TRACE(ReorderStrategyName(s));
      ExpectValidPermutation(ComputeReordering(g, s), g.NumVertices());
    }
  }
}

TEST(ReorderTest, NoneIsIdentity) {
  const VertexPermutation perm =
      ComputeReordering(RandomDigraph(30, 80, 0x73), ReorderStrategy::kNone);
  for (VertexId v = 0; v < 30; ++v) EXPECT_EQ(perm.ToNew(v), v);
}

TEST(ReorderTest, DegreeStrategyPutsHubsFirst) {
  const Digraph g = ScaleFreeDag(100, 3, 0x74);
  const VertexPermutation perm =
      ComputeReordering(g, ReorderStrategy::kDegree);
  for (VertexId new_id = 0; new_id + 1 < 100; ++new_id) {
    EXPECT_GE(g.Degree(perm.ToOld(new_id)), g.Degree(perm.ToOld(new_id + 1)))
        << "new id " << new_id;
  }
}

TEST(ReorderTest, RelabelPreservesEdges) {
  const Digraph g = RandomDigraph(40, 120, 0x75);
  for (ReorderStrategy s : kAllStrategies) {
    SCOPED_TRACE(ReorderStrategyName(s));
    const VertexPermutation perm = ComputeReordering(g, s);
    const Digraph relabeled = RelabelDigraph(g, perm);
    ASSERT_EQ(relabeled.NumVertices(), g.NumVertices());
    ASSERT_EQ(relabeled.NumEdges(), g.NumEdges());
    for (const Edge& e : g.Edges()) {
      EXPECT_TRUE(relabeled.HasEdge(perm.ToNew(e.source),
                                    perm.ToNew(e.target)))
          << e.source << "->" << e.target;
    }
  }
}

TEST(ReorderingIndexTest, MatchesOracleUnderEveryStrategy) {
  const Digraph graphs[] = {
      figure1::PlainGraph(),
      RandomDigraph(44, 140, 0x76),
      ScaleFreeDag(60, 3, 0x77),
  };
  for (const Digraph& g : graphs) {
    TransitiveClosure oracle;
    oracle.Build(g);
    for (ReorderStrategy s : kAllStrategies) {
      SCOPED_TRACE(ReorderStrategyName(s));
      ReorderingIndex index(std::make_unique<PrunedTwoHop>(), s);
      index.Build(g);
      index.PrepareConcurrentQueries(2);
      for (VertexId a = 0; a < g.NumVertices(); ++a) {
        for (VertexId b = 0; b < g.NumVertices(); ++b) {
          const bool expected = oracle.Query(a, b);
          ASSERT_EQ(index.Query(a, b), expected) << a << "->" << b;
          ASSERT_EQ(index.QueryInSlot(a, b, 1), expected) << a << "->" << b;
        }
      }
    }
  }
}

TEST(ReorderingIndexTest, NameAndStats) {
  ReorderingIndex index(std::make_unique<PrunedTwoHop>(),
                        ReorderStrategy::kDegree);
  EXPECT_EQ(index.Name(), "reorder(deg)+pll");
  const Digraph g = ScaleFreeDag(50, 2, 0x78);
  index.Build(g);
#if REACH_METRICS
  // The reorder phase is reported ahead of the absorbed inner phases.
  const auto& phases = index.Stats().phases;
  ASSERT_FALSE(phases.empty());
  EXPECT_EQ(phases.front().name, "reorder");
#endif
  EXPECT_TRUE(index.IsComplete());
  // Shim cost: two VertexId arrays on top of the inner index.
  EXPECT_EQ(index.IndexSizeBytes(),
            index.inner().IndexSizeBytes() + 2 * 50 * sizeof(VertexId));
  ExpectValidPermutation(index.permutation(), 50);
}

}  // namespace
}  // namespace reach
