// Chaos suite for the hardened serve path (docs/ROBUSTNESS.md): overload
// shedding, write backpressure, rebuild retry/backoff/watchdog, crash-safe
// snapshot writes, and health reporting — all driven by the failpoint
// framework (core/failpoint.h) where fault injection is needed. The
// invariant throughout: faults may cost availability (shed queries,
// blocked writers, delayed drains) but never correctness — every exact
// answer is checked against an independent BFS oracle. Tests that need
// the REACH_FAILPOINT macro sites skip themselves unless the binary was
// built with -DREACH_FAILPOINTS=ON.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "plain/pruned_two_hop.h"
#include "serve/reach_service.h"

namespace reach {
namespace {

// Independent oracle: plain BFS over the base graph plus the first
// `watermark` entries of the insertion log (same protocol as
// serve_test.cc; shares no code with the service's traversals).
bool OracleReachable(const Digraph& base, const std::vector<Edge>& log,
                     size_t watermark, VertexId s, VertexId t) {
  std::vector<std::vector<VertexId>> extra(base.NumVertices());
  for (size_t i = 0; i < watermark; ++i) {
    extra[log[i].source].push_back(log[i].target);
  }
  std::vector<uint8_t> seen(base.NumVertices(), 0);
  std::vector<VertexId> queue = {s};
  seen[s] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    if (v == t) return true;
    for (VertexId n : base.OutNeighbors(v)) {
      if (!seen[n]) {
        seen[n] = 1;
        queue.push_back(n);
      }
    }
    for (VertexId n : extra[v]) {
      if (!seen[n]) {
        seen[n] = 1;
        queue.push_back(n);
      }
    }
  }
  return false;
}

// Spins until `pred` holds or ~5s pass; returns whether it held.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

// ---------------------------------------------------------------------
// Admission control / overload shedding.

TEST_F(ChaosTest, OverloadShedsInsteadOfQueueingAndNeverLies) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  constexpr VertexId kN = 32;
  const Digraph base = Chain(kN);  // reachable iff s <= t
  ServiceOptions opts;
  opts.max_inflight_queries = 2;
  opts.slots = 8;
  ReachService service(base, opts);
  service.Start();
  service.Flush();

  // Every query dwells 3ms inside the admission window, so 8 concurrent
  // readers hold 8 in-flight slots against a cap of 2: the gate must
  // degrade and shed.
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm("serve.query", "delay(ms=3)",
                                              &error))
      << error;
  std::atomic<uint64_t> wrong{0};
  std::atomic<uint64_t> shed_seen{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 8; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256ss rng(0x900D + r);
      for (int q = 0; q < 30; ++q) {
        const auto s = static_cast<VertexId>(rng.NextBounded(kN));
        const auto t = static_cast<VertexId>(rng.NextBounded(kN));
        const ServeAnswer ans = service.Query(s, t);
        if (ans.source == AnswerSource::kShedded) {
          ++shed_seen;
          if (ans.exact) ++wrong;  // a shed answer must never claim truth
          continue;
        }
        // Admitted tiers may degrade but stay sound: positives always,
        // negatives whenever marked exact.
        if (ans.reachable && s > t) ++wrong;
        if (!ans.reachable && ans.exact && s <= t) ++wrong;
      }
    });
  }
  for (auto& th : readers) th.join();
  FailpointRegistry::Global().DisarmAll();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(shed_seen.load(), 0u);
  const ServeStats& st = service.stats();
  EXPECT_EQ(st.shed.load(), shed_seen.load());
  // The middle tiers fired on the way up to the cap.
  EXPECT_GT(st.admission_cache_only.load() + st.admission_bfs_only.load(),
            0u);
  EXPECT_EQ(service.InflightQueries(), 0u);  // RAII: the gate drained
  // Ungated again, queries are full-pipeline and exact.
  const ServeAnswer calm = service.Query(0, kN - 1);
  EXPECT_TRUE(calm.reachable);
  EXPECT_TRUE(calm.exact);
  service.Stop();
}

// ---------------------------------------------------------------------
// Write backpressure.

TEST_F(ChaosTest, RejectPolicyBouncesWritesAtTheCap) {
  const Digraph base = Chain(16);
  ServiceOptions opts;
  opts.max_pending_edges = 4;
  opts.backpressure = BackpressurePolicy::kReject;
  opts.drain_threshold = 1000;  // no automatic drain: the cap must act
  ReachService service(base, opts);
  service.Start();
  service.Flush();

  for (VertexId i = 0; i < 4; ++i) {
    EXPECT_TRUE(service.InsertEdge(i + 1, i));
  }
  EXPECT_FALSE(service.InsertEdge(9, 3));  // buffer full: bounced
  EXPECT_FALSE(service.InsertEdge(9, 4));
  EXPECT_EQ(service.stats().backpressure_rejected.load(), 2u);
  EXPECT_EQ(service.PendingEdgeCount(), 4u);

  service.Flush();  // drain makes room again
  EXPECT_TRUE(service.InsertEdge(9, 3));
  service.Stop();
}

TEST_F(ChaosTest, BlockPolicyStallsWritersUntilADrainMakesRoom) {
  const Digraph base = Chain(16);
  ServiceOptions opts;
  opts.max_pending_edges = 3;
  opts.backpressure = BackpressurePolicy::kBlock;
  opts.drain_threshold = 1000;  // only backpressure ever schedules drains
  ReachService service(base, opts);
  service.Start();
  service.Flush();

  // 12 inserts through a cap of 3: the writer must block at least once,
  // each block force-schedules the drain that unblocks it, and every
  // insert is eventually accepted.
  std::thread writer([&] {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(service.InsertEdge(static_cast<VertexId>(i % 15 + 1),
                                     static_cast<VertexId>(i % 15)));
    }
  });
  writer.join();
  EXPECT_EQ(service.stats().inserts.load(), 12u);
  EXPECT_GT(service.stats().backpressure_blocked.load(), 0u);
  service.Flush();
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  service.Stop();
}

TEST_F(ChaosTest, ForceRebuildPolicyAcceptsPastCapAndConverges) {
  const Digraph base = Chain(16);
  ServiceOptions opts;
  opts.max_pending_edges = 3;
  opts.backpressure = BackpressurePolicy::kForceRebuild;
  opts.drain_threshold = 1000;
  ReachService service(base, opts);
  service.Start();
  service.Flush();

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.InsertEdge(static_cast<VertexId>(i % 15 + 1),
                                   static_cast<VertexId>(i % 15)));
  }
  EXPECT_EQ(service.stats().inserts.load(), 12u);  // nothing bounced
  EXPECT_GT(service.stats().backpressure_forced.load(), 0u);
  service.Flush();
  EXPECT_EQ(service.PendingEdgeCount(), 0u);  // forced drains converged
  service.Stop();
}

TEST_F(ChaosTest, StopUnblocksAParkedWriter) {
  const Digraph base = Chain(8);
  ServiceOptions opts;
  opts.max_pending_edges = 1;
  opts.backpressure = BackpressurePolicy::kBlock;
  opts.drain_threshold = 1000;
  ReachService service(base, opts);
  // Never started: no drain will ever make room, so the second insert
  // parks until Stop() sweeps it out with a rejection.
  ASSERT_TRUE(service.InsertEdge(1, 0));
  std::atomic<bool> second_result{true};
  std::thread writer(
      [&] { second_result = service.InsertEdge(2, 1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.Stop();
  writer.join();
  EXPECT_FALSE(second_result.load());
}

// ---------------------------------------------------------------------
// Rebuild resilience.

TEST_F(ChaosTest, RebuildFailuresRetryWithBackoffAndLastGoodKeepsServing) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const Digraph base = Chain(10);
  ServiceOptions opts;
  opts.drain_threshold = 1000;
  opts.rebuild_backoff_initial = std::chrono::milliseconds(1);
  opts.rebuild_backoff_max = std::chrono::milliseconds(8);
  ReachService service(base, opts);
  service.Start();
  service.Flush();
  const uint64_t good_version = service.SnapshotVersion();

  // The next two drain attempts die; the third succeeds.
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm("serve.rebuild",
                                              "error(times=2)", &error))
      << error;
  ASSERT_TRUE(service.InsertEdge(9, 0));
  // Mid-retry, the last good snapshot serves and the pending edge is
  // still answered exactly through the delta closure.
  const ServeAnswer during = service.Query(5, 2);
  EXPECT_TRUE(during.reachable);
  EXPECT_TRUE(during.exact);
  service.Flush();  // returns only once a drain finally lands

  const ServeStats& st = service.stats();
  EXPECT_EQ(st.rebuild_failures.load(), 2u);
  EXPECT_EQ(st.rebuild_retries.load(), 2u);
  EXPECT_GT(service.SnapshotVersion(), good_version);
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  const ServiceHealth health = service.Health();
  EXPECT_EQ(health.rebuild, RebuildState::kIdle);
  EXPECT_EQ(health.rebuild_consecutive_failures, 0u);
  EXPECT_NE(health.last_rebuild_error.find("serve.rebuild"),
            std::string::npos);
  const ServeAnswer after = service.Query(5, 2);
  EXPECT_TRUE(after.reachable);
  EXPECT_EQ(after.source, AnswerSource::kIndex);
  service.Stop();
}

TEST_F(ChaosTest, RetriesExhaustedReportsFailedThenRecoversOnDisarm) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const Digraph base = Chain(10);
  ServiceOptions opts;
  opts.drain_threshold = 1;  // every insert schedules a drain
  opts.rebuild_max_retries = 1;
  opts.rebuild_backoff_initial = std::chrono::milliseconds(1);
  opts.rebuild_backoff_max = std::chrono::milliseconds(4);
  ReachService service(base, opts);
  service.Start();
  ASSERT_TRUE(WaitFor([&] { return service.SnapshotVersion() >= 1; }));

  std::string error;
  ASSERT_TRUE(
      FailpointRegistry::Global().Arm("serve.rebuild", "error", &error))
      << error;
  ASSERT_TRUE(service.InsertEdge(9, 0));
  // Initial attempt + one retry both fail: the drain is abandoned.
  ASSERT_TRUE(WaitFor(
      [&] { return service.Health().rebuild == RebuildState::kFailed; }));
  EXPECT_GE(service.stats().rebuild_failures.load(), 2u);
  EXPECT_EQ(service.PendingEdgeCount(), 1u);  // edge kept, not lost
  // Degraded but correct: the pending edge still answers via the delta.
  const ServeAnswer during = service.Query(5, 2);
  EXPECT_TRUE(during.reachable);
  EXPECT_TRUE(during.exact);

  // Fault clears; the next write schedules a fresh drain that succeeds.
  FailpointRegistry::Global().DisarmAll();
  ASSERT_TRUE(service.InsertEdge(8, 1));
  service.Flush();
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  EXPECT_EQ(service.Health().rebuild, RebuildState::kIdle);
  EXPECT_EQ(service.Query(5, 2).source, AnswerSource::kIndex);
  service.Stop();
}

TEST_F(ChaosTest, WatchdogAbandonsAStalledDrainAndTheRetryLands) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const Digraph base = Chain(10);
  ServiceOptions opts;
  opts.drain_threshold = 1000;
  opts.rebuild_watchdog = std::chrono::milliseconds(10);
  opts.rebuild_backoff_initial = std::chrono::milliseconds(1);
  opts.rebuild_backoff_max = std::chrono::milliseconds(4);
  ReachService service(base, opts);
  service.Start();
  service.Flush();

  // The first drain attempt stalls 60ms >> the 10ms watchdog deadline;
  // the re-queued attempt runs clean (times=1 spends the failpoint).
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm(
      "serve.rebuild", "delay(ms=60,times=1)", &error))
      << error;
  ASSERT_TRUE(service.InsertEdge(9, 0));
  service.Flush();
  EXPECT_EQ(service.stats().watchdog_fired.load(), 1u);
  EXPECT_GE(service.stats().rebuild_retries.load(), 1u);
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  EXPECT_EQ(service.Query(5, 2).source, AnswerSource::kIndex);
  service.Stop();
}

TEST_F(ChaosTest, TombstoneHoldsWhileRebuildsFailAndMaterializesAfter) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const Digraph base = Chain(10);
  ServiceOptions opts;
  opts.drain_threshold = 1000;
  opts.rebuild_backoff_initial = std::chrono::milliseconds(1);
  opts.rebuild_backoff_max = std::chrono::milliseconds(8);
  ReachService service(base, opts);
  service.Start();
  service.Flush();
  ASSERT_TRUE(service.Query(0, 9).reachable);

  // The next two drain attempts die; the delete's tombstone must hold
  // through every retry — a stale positive here would be a lie served
  // from the old snapshot.
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm("serve.rebuild",
                                              "error(times=2)", &error))
      << error;
  ASSERT_TRUE(service.DeleteEdge(4, 5));
  const ServeAnswer during = service.Query(0, 9);
  EXPECT_FALSE(during.reachable);
  EXPECT_TRUE(during.exact);
  EXPECT_TRUE(service.Query(0, 4).reachable);
  EXPECT_TRUE(service.Query(5, 9).reachable);

  service.Flush();  // returns once a drain finally lands
  EXPECT_EQ(service.stats().rebuild_failures.load(), 2u);
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  const ServeAnswer after = service.Query(0, 9);
  EXPECT_FALSE(after.reachable);
  EXPECT_TRUE(after.exact);
  EXPECT_EQ(after.source, AnswerSource::kIndex);
  service.Stop();
}

TEST_F(ChaosTest, ChurnUnderRebuildFaultsStaysExact) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  // Mixed insert/delete churn while half the drain attempts die. A single
  // writer keeps the live edge set deterministic, so every answer can be
  // checked against a BFS over it regardless of which snapshot/pending
  // split the service happens to be serving from.
  constexpr VertexId kN = 24;
  const Digraph base = RandomDigraph(kN, 50, 0xD1CE);
  ServiceOptions opts;
  opts.drain_threshold = 6;
  opts.rebuild_backoff_initial = std::chrono::milliseconds(1);
  opts.rebuild_backoff_max = std::chrono::milliseconds(4);
  ReachService service(base, opts);
  service.Start();
  service.Flush();

  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm(
      "serve.rebuild", "error(p=0.5,seed=21)", &error))
      << error;

  std::vector<Edge> live = base.Edges();
  const auto oracle = [&](VertexId s, VertexId t) {
    std::vector<std::vector<VertexId>> adj(kN);
    for (const Edge& e : live) adj[e.source].push_back(e.target);
    std::vector<uint8_t> seen(kN, 0);
    std::vector<VertexId> queue = {s};
    seen[s] = 1;
    for (size_t head = 0; head < queue.size(); ++head) {
      if (queue[head] == t) return true;
      for (VertexId w : adj[queue[head]]) {
        if (!seen[w]) {
          seen[w] = 1;
          queue.push_back(w);
        }
      }
    }
    return false;
  };

  Xoshiro256ss rng(0xC4A0);
  for (int step = 0; step < 60; ++step) {
    if (rng.NextBounded(3) != 0 || live.empty()) {
      const auto u = static_cast<VertexId>(rng.NextBounded(kN));
      const auto v = static_cast<VertexId>(rng.NextBounded(kN));
      ASSERT_TRUE(service.InsertEdge(u, v));
      live.push_back({u, v});
    } else {
      const Edge e = live[rng.NextBounded(live.size())];
      ASSERT_TRUE(service.DeleteEdge(e.source, e.target));
      // The service deletes the arc, not one copy of it — mirror that.
      std::erase(live, e);
    }
    for (int q = 0; q < 8; ++q) {
      const auto s = static_cast<VertexId>(rng.NextBounded(kN));
      const auto t = static_cast<VertexId>(rng.NextBounded(kN));
      const ServeAnswer ans = service.Query(s, t);
      ASSERT_TRUE(ans.exact) << "step " << step;
      ASSERT_EQ(ans.reachable, oracle(s, t))
          << "step " << step << ": " << s << "->" << t;
    }
  }

  FailpointRegistry::Global().DisarmAll();
  service.Flush();
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  for (VertexId s = 0; s < kN; ++s) {
    for (VertexId t = 0; t < kN; ++t) {
      const ServeAnswer ans = service.Query(s, t);
      ASSERT_EQ(ans.reachable, oracle(s, t)) << s << "->" << t;
      ASSERT_TRUE(ans.exact);
    }
  }
  service.Stop();
}

// ---------------------------------------------------------------------
// Crash-safe snapshot writes.

TEST_F(ChaosTest, TornSnapshotWriteLeavesTheOldFileServable) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const Digraph g = ScaleFreeDag(300, 3, 7);
  PrunedTwoHop index;
  index.Build(g);
  const std::string path = ::testing::TempDir() + "chaos_snap.rchx";
  std::string error;
  ASSERT_TRUE(index.SaveSnapshot(path, &error)) << error;

  for (const char* fault : {"partial(bytes=256)", "error"}) {
    ASSERT_TRUE(
        FailpointRegistry::Global().Arm("snapshot.write", fault, &error))
        << error;
    std::string save_error;
    EXPECT_FALSE(index.SaveSnapshot(path, &save_error)) << fault;
    EXPECT_FALSE(save_error.empty());
    FailpointRegistry::Global().DisarmAll();

    // The torn write went to a temp file; the published snapshot at
    // `path` is still the complete old one and answers identically.
    PrunedTwoHop reloaded;
    const LoadResult result = reloaded.LoadSnapshot(path);
    ASSERT_TRUE(static_cast<bool>(result))
        << fault << ": " << LoadStatusMessage(result);
    Xoshiro256ss rng(0x7E57);
    for (int q = 0; q < 200; ++q) {
      const auto s = static_cast<VertexId>(rng.NextBounded(300));
      const auto t = static_cast<VertexId>(rng.NextBounded(300));
      ASSERT_EQ(reloaded.Query(s, t), index.Query(s, t))
          << fault << ": " << s << "->" << t;
    }
  }
}

TEST_F(ChaosTest, AtomicSaveLeavesNoTempFileDebrisOnFailure) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  const Digraph g = Chain(20);
  PrunedTwoHop index;
  index.Build(g);
  const std::string path = ::testing::TempDir() + "chaos_debris.rchx";
  std::remove(path.c_str());  // a previous run may have left one behind
  std::remove((path + ".tmp").c_str());
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Arm("snapshot.write", "error",
                                              &error))
      << error;
  std::string save_error;
  EXPECT_FALSE(index.SaveSnapshot(path, &save_error));
  FailpointRegistry::Global().DisarmAll();
  EXPECT_FALSE(std::ifstream(path).good());           // target never appeared
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());  // temp cleaned up
  ASSERT_TRUE(index.SaveSnapshot(path, &save_error)) << save_error;
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

// ---------------------------------------------------------------------
// Health reporting.

TEST_F(ChaosTest, HealthTracksLifecycle) {
  const Digraph base = Chain(8);
  ServiceOptions opts;
  opts.max_inflight_queries = 4;
  opts.max_pending_edges = 10;
  opts.drain_threshold = 1000;
  ReachService service(base, opts);

  ServiceHealth h = service.Health();
  EXPECT_FALSE(h.ready);  // no index yet
  EXPECT_TRUE(h.accepting_writes);
  EXPECT_EQ(h.rebuild, RebuildState::kIdle);
  EXPECT_EQ(h.inflight_queries, 0u);
  EXPECT_EQ(h.max_inflight_queries, 4u);

  service.Start();
  service.Flush();
  ASSERT_TRUE(service.InsertEdge(7, 0));
  h = service.Health();
  EXPECT_TRUE(h.ready);
  EXPECT_GE(h.snapshot_version, 1u);
  EXPECT_EQ(h.pending_edges, 1u);
  EXPECT_EQ(h.max_pending_edges, 10u);
  EXPECT_DOUBLE_EQ(h.pending_fill, 0.1);
  EXPECT_TRUE(h.last_rebuild_error.empty());

  service.Stop();
  h = service.Health();
  EXPECT_FALSE(h.accepting_writes);
  EXPECT_TRUE(h.ready);  // still serving the last snapshot
}

// ---------------------------------------------------------------------
// The everything-at-once differential: concurrent readers and a writer
// while rebuilds randomly fail and queries are randomly delayed. Faults
// cost retries and latency, never answers.

TEST_F(ChaosTest, ChaosMixDifferentialZeroWrongAnswers) {
  if (!kFailpointsCompiled) GTEST_SKIP() << "REACH_FAILPOINTS is OFF";
  constexpr size_t kReaders = 4;
  constexpr size_t kInserts = 48;
  constexpr size_t kQueriesPerReader = 250;
  constexpr VertexId kN = 48;
  const Digraph base = RandomDigraph(kN, 100, 0xC0DE);

  ServiceOptions opts;
  opts.slots = kReaders;
  opts.drain_threshold = 8;
  opts.max_inflight_queries = 16;
  opts.rebuild_backoff_initial = std::chrono::milliseconds(1);
  opts.rebuild_backoff_max = std::chrono::milliseconds(8);
  ReachService service(base, opts);
  service.Start();

  std::string error;
  ASSERT_TRUE(FailpointRegistry::Global().Configure(
      "serve.rebuild=error(p=0.4,seed=11);"
      "serve.query=delay(ms=1,p=0.05,seed=12)",
      &error))
      << error;

  std::vector<Edge> log(kInserts);
  std::atomic<size_t> published{0};
  std::atomic<size_t> inserted{0};
  std::atomic<uint64_t> wrong_positive{0};
  std::atomic<uint64_t> wrong_negative{0};

  std::thread writer([&] {
    Xoshiro256ss rng(0xFEED);
    for (size_t i = 0; i < kInserts; ++i) {
      const Edge e{static_cast<VertexId>(rng.NextBounded(kN)),
                   static_cast<VertexId>(rng.NextBounded(kN))};
      log[i] = e;
      published.store(i + 1, std::memory_order_release);
      ASSERT_TRUE(service.InsertEdge(e.source, e.target));
      inserted.store(i + 1, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256ss rng(0x3000 + r);
      for (size_t q = 0; q < kQueriesPerReader; ++q) {
        const auto s = static_cast<VertexId>(rng.NextBounded(kN));
        const auto t = static_cast<VertexId>(rng.NextBounded(kN));
        const size_t w_before = inserted.load(std::memory_order_acquire);
        const ServeAnswer ans = service.Query(s, t);
        const size_t w_after = published.load(std::memory_order_acquire);
        if (ans.source == AnswerSource::kShedded) continue;
        if (ans.reachable) {
          if (!OracleReachable(base, log, w_after, s, t)) ++wrong_positive;
        } else if (ans.exact) {
          if (OracleReachable(base, log, w_before, s, t)) ++wrong_negative;
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();

  // Quiesce: clear the faults and drain whatever the failures piled up.
  FailpointRegistry::Global().DisarmAll();
  service.Flush();

  EXPECT_EQ(wrong_positive.load(), 0u);
  EXPECT_EQ(wrong_negative.load(), 0u);
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  EXPECT_EQ(service.stats().inserts.load(), kInserts);
  // Deterministic coda (the p=0.4 firing pattern above depends on drain
  // timing): force exactly one more failure and watch it absorbed.
  ASSERT_TRUE(FailpointRegistry::Global().Arm("serve.rebuild",
                                              "error(times=1)", &error))
      << error;
  ASSERT_TRUE(service.InsertEdge(0, 1));
  service.Flush();
  FailpointRegistry::Global().DisarmAll();
  log.push_back(Edge{0, 1});
  EXPECT_GT(service.stats().rebuild_failures.load(), 0u);

  // Final ground-truth sweep over every pair on the quiesced service.
  for (VertexId s = 0; s < kN; ++s) {
    for (VertexId t = 0; t < kN; ++t) {
      const ServeAnswer ans = service.Query(s, t);
      ASSERT_EQ(ans.reachable, OracleReachable(base, log, log.size(), s, t))
          << s << "->" << t;
      ASSERT_TRUE(ans.exact);
    }
  }
  service.Stop();
}

}  // namespace
}  // namespace reach
