#include "lcr/landmark_index.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lcr/lcr_bfs.h"

namespace reach {
namespace {

void ExpectMatchesBfs(LandmarkIndex& index, const LabeledDigraph& g) {
  index.Build(g);
  SearchWorkspace ws;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      for (LabelSet mask = 0; mask < (1u << g.NumLabels()); ++mask) {
        ASSERT_EQ(index.Query(s, t, mask),
                  LcrBfsReachability(g, s, t, mask, ws))
            << index.Name() << " " << s << "->" << t << " mask " << mask;
      }
    }
  }
}

TEST(LandmarkBudgetTest, ZeroShortcutBudgetIsStillExact) {
  const LabeledDigraph g = RandomLabeledDigraph(18, 70, 3, 7);
  LandmarkIndex index(/*num_landmarks=*/4, /*budget=*/0);
  ExpectMatchesBfs(index, g);
}

TEST(LandmarkBudgetTest, LargeShortcutBudgetIsStillExact) {
  const LabeledDigraph g = RandomLabeledDigraph(18, 70, 3, 8);
  LandmarkIndex index(/*num_landmarks=*/4, /*budget=*/16);
  ExpectMatchesBfs(index, g);
}

TEST(LandmarkBudgetTest, MoreLandmarksThanVertices) {
  const LabeledDigraph g = RandomLabeledDigraph(6, 18, 2, 9);
  LandmarkIndex index(/*num_landmarks=*/100, /*budget=*/2);
  ExpectMatchesBfs(index, g);
  // Every vertex became a landmark: all queries are pure row lookups.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(index.IsLandmark(v));
  }
}

TEST(LandmarkBudgetTest, ZeroLandmarksDegeneratesToConstrainedBfs) {
  const LabeledDigraph g = RandomLabeledDigraph(14, 50, 3, 10);
  LandmarkIndex index(/*num_landmarks=*/0, /*budget=*/2);
  ExpectMatchesBfs(index, g);
}

TEST(LandmarkBudgetTest, BiggerBudgetGrowsIndexSize) {
  const LabeledDigraph g = RandomLabeledDigraph(200, 900, 4, 11);
  LandmarkIndex thin(8, 0), fat(8, 8);
  thin.Build(g);
  fat.Build(g);
  EXPECT_LT(thin.IndexSizeBytes(), fat.IndexSizeBytes());
}

}  // namespace
}  // namespace reach
