// The paper's Figure 1 running example, asserted verbatim (experiment E1
// of EXPERIMENTS.md). Each worked query from the text is checked against
// multiple independent engines.

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/scc.h"
#include "lcr/gtc_index.h"
#include "lcr/label_set.h"
#include "lcr/lcr_bfs.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "lcr/single_source_gtc.h"
#include "core/index_factory.h"
#include "rlc/rlc_index.h"
#include "rlc/rlc_product_bfs.h"
#include "rpq/rpq_evaluator.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

using namespace figure1;

class Figure1Test : public ::testing::Test {
 protected:
  const LabeledDigraph labeled_ = LabeledGraph();
  const Digraph plain_ = PlainGraph();
};

TEST_F(Figure1Test, Shape) {
  EXPECT_EQ(labeled_.NumVertices(), 9u);
  EXPECT_EQ(labeled_.NumLabels(), 3u);
  EXPECT_EQ(plain_.NumVertices(), 9u);
}

// §2.1: "Qr(A, G) = true because of an s-t path (A, D, H, G)".
TEST_F(Figure1Test, Sec21PlainReachability) {
  TransitiveClosure tc;
  tc.Build(plain_);
  EXPECT_TRUE(tc.Query(kA, kG));
  // The cited path exists edge by edge.
  EXPECT_TRUE(plain_.HasEdge(kA, kD));
  EXPECT_TRUE(plain_.HasEdge(kD, kH));
  EXPECT_TRUE(plain_.HasEdge(kH, kG));
  // And every roster index agrees.
  for (const std::string& spec : DefaultIndexSpecs(IndexFamily::kPlain)) {
    auto index = MakeIndex(spec).plain;
    index->Build(plain_);
    EXPECT_TRUE(index->Query(kA, kG)) << spec;
  }
}

// §2.2: "if alpha = (friendOf ∪ follows)*, then Qr(A, G, alpha) = false
// because every path from A to G includes worksFor".
TEST_F(Figure1Test, Sec22PathConstrainedExample) {
  SearchWorkspace ws;
  const LabelSet social = MakeLabelSet({kFriendOf, kFollows});
  EXPECT_FALSE(LcrBfsReachability(labeled_, kA, kG, social, ws));
  // Relaxing the constraint to include worksFor flips the answer, i.e.,
  // worksFor is exactly what all A-G paths need.
  EXPECT_TRUE(LcrBfsReachability(labeled_, kA, kG,
                                 social | MakeLabelSet({kWorksFor}), ws));
  auto rpq = RpqQuery::Compile("(friendOf|follows)*", labeled_.label_names(),
                               kNumLabels);
  ASSERT_NE(rpq, nullptr);
  EXPECT_FALSE(rpq->Evaluate(labeled_, kA, kG));
}

// §4.1: "vertex M is reachable from vertex L via two paths ... the label
// set of p1 is a subset of the label set of p2, such that the former is
// the SPLS from L to M".
TEST_F(Figure1Test, Sec41SplsFromLToM) {
  // Both cited paths exist.
  SearchWorkspace ws;
  EXPECT_TRUE(LcrBfsReachability(labeled_, kL, kM,
                                 MakeLabelSet({kWorksFor}), ws));  // p1
  EXPECT_TRUE(LcrBfsReachability(labeled_, kL, kM,
                                 MakeLabelSet({kFollows, kWorksFor}),
                                 ws));  // p2's labels
  // The minimal SPLS is p1's {worksFor} alone.
  const auto gtc = SingleSourceGtc(labeled_, kL);
  EXPECT_EQ(gtc[kM].sets(),
            (std::vector<LabelSet>{MakeLabelSet({kWorksFor})}));
}

// §4.1: "the SPLS from A to M is {follows, worksFor}, which can be
// computed by using the SPLS from A to L, i.e., {follows}, and the SPLS
// from L to M, i.e., {worksFor}" (transitivity / cross product).
TEST_F(Figure1Test, Sec41SplsTransitivity) {
  const auto from_a = SingleSourceGtc(labeled_, kA);
  EXPECT_EQ(from_a[kL].sets(),
            (std::vector<LabelSet>{MakeLabelSet({kFollows})}));
  EXPECT_EQ(from_a[kM].sets(),
            (std::vector<LabelSet>{MakeLabelSet({kFollows, kWorksFor})}));
  // The cross product of the two component SPLSs equals the result.
  EXPECT_EQ(from_a[kM].sets()[0],
            from_a[kL].sets()[0] | MakeLabelSet({kWorksFor}));
}

// §4.1.2: "H is reachable from L via two paths ... p3 is 'shorter' than
// p4 since p3 has only 1 distinct label while p4 has 2. Thus, p3 is
// expanded ... and p4 is ignored."
TEST_F(Figure1Test, Sec412DijkstraLikeOrdering) {
  // p4's two-label path exists...
  SearchWorkspace ws;
  EXPECT_TRUE(LcrBfsReachability(labeled_, kL, kH,
                                 MakeLabelSet({kWorksFor, kFriendOf}), ws));
  // ...but the settled minimal SPLS is p3's single label.
  const auto gtc = SingleSourceGtc(labeled_, kL);
  ASSERT_EQ(gtc[kH].sets().size(), 1u);
  EXPECT_EQ(gtc[kH].sets()[0], MakeLabelSet({kWorksFor}));
  EXPECT_EQ(LabelCount(gtc[kH].sets()[0]), 1);
}

// §4.2: "Qr(L, B, (worksFor · friendOf)*) = true" via the cited path.
TEST_F(Figure1Test, Sec42ConcatenationExample) {
  SearchWorkspace ws;
  const KleeneSequence seq = {kWorksFor, kFriendOf};
  EXPECT_TRUE(RlcProductBfsReachability(labeled_, kL, kB, seq, ws));
  // The cited path (L, worksFor, D, friendOf, H, worksFor, G, friendOf, B)
  // exists edge by edge with those labels.
  auto has_arc = [&](VertexId u, VertexId v, Label l) {
    for (const auto& arc : labeled_.OutArcs(u)) {
      if (arc.vertex == v && arc.label == l) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_arc(kL, kD, kWorksFor));
  EXPECT_TRUE(has_arc(kD, kH, kFriendOf));
  EXPECT_TRUE(has_arc(kH, kG, kWorksFor));
  EXPECT_TRUE(has_arc(kG, kB, kFriendOf));
  // Indexed answer agrees; the paper's §4.2 "MR" of the path is the
  // two-label sequence itself.
  RlcIndex rlc;
  rlc.Build(labeled_, {seq});
  EXPECT_TRUE(rlc.Query(kL, kB, seq));
  EXPECT_EQ(MinimumRepeat({kWorksFor, kFriendOf, kWorksFor, kFriendOf}),
            seq);
}

// Cross-engine agreement on the whole example: every LCR engine, every
// mask, every pair.
TEST_F(Figure1Test, AllLcrEnginesAgreeOnAllMasks) {
  GtcIndex gtc;
  PrunedLabeledTwoHop p2h;
  gtc.Build(labeled_);
  p2h.Build(labeled_);
  SearchWorkspace ws;
  for (VertexId s = 0; s < labeled_.NumVertices(); ++s) {
    for (VertexId t = 0; t < labeled_.NumVertices(); ++t) {
      for (LabelSet mask = 0; mask < 8; ++mask) {
        const bool expected = LcrBfsReachability(labeled_, s, t, mask, ws);
        EXPECT_EQ(gtc.Query(s, t, mask), expected);
        EXPECT_EQ(p2h.Query(s, t, mask), expected);
      }
    }
  }
}

// B and M form the only SCC (the labeled graph's plain projection is not
// a DAG) — exercising the §3.1 reduction on the running example.
TEST_F(Figure1Test, BAndMFormTheOnlyScc) {
  const SccDecomposition scc = ComputeScc(plain_);
  EXPECT_EQ(scc.num_components, 8u);  // 9 vertices, one 2-cycle
  EXPECT_TRUE(scc.SameComponent(kB, kM));
  EXPECT_FALSE(scc.SameComponent(kB, kG));
}

}  // namespace
}  // namespace reach
