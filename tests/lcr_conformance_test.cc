// Cross-cutting LCR conformance: every index in the LCR factory roster
// must agree with the constrained-BFS oracle for all vertex pairs and ALL
// 2^|L| constraint masks, across graph families — plus the paper's
// Figure 1(b) worked queries.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "lcr/label_set.h"
#include "lcr/lcr_bfs.h"
#include "core/index_factory.h"

namespace reach {
namespace {

void ExpectMatchesOracle(LcrIndex& index, const LabeledDigraph& graph,
                         const std::string& context) {
  index.Build(graph);
  SearchWorkspace ws;
  const LabelSet all_masks = LabelSet{1} << graph.NumLabels();
  for (VertexId s = 0; s < graph.NumVertices(); ++s) {
    for (VertexId t = 0; t < graph.NumVertices(); ++t) {
      for (LabelSet mask = 0; mask < all_masks; ++mask) {
        const bool expected = LcrBfsReachability(graph, s, t, mask, ws);
        ASSERT_EQ(index.Query(s, t, mask), expected)
            << context << ": " << index.Name() << " disagrees on " << s
            << " -> " << t << " mask=" << mask;
      }
    }
  }
}

class LcrConformanceTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(LcrConformanceTest, MatchesConstrainedBfsEverywhere) {
  const auto& [spec, seed] = GetParam();
  auto index = MakeIndex(spec).lcr;
  ASSERT_NE(index, nullptr) << spec;

  ExpectMatchesOracle(*index, RandomLabeledDigraph(18, 60, 3, seed),
                      "random3");
  ExpectMatchesOracle(*index, RandomLabeledDigraph(14, 70, 4, seed),
                      "random4-dense");
  ExpectMatchesOracle(*index,
                      WithZipfLabels(RandomDigraph(16, 48, seed), 3, 1.5,
                                     seed + 1),
                      "zipf");
  ExpectMatchesOracle(*index, WithUniformLabels(RandomDag(16, 44, seed), 3,
                                                seed + 2),
                      "dag");
  ExpectMatchesOracle(*index, WithUniformLabels(Cycle(8), 2, seed), "cycle");
  ExpectMatchesOracle(*index, figure1::LabeledGraph(), "figure1");
  ExpectMatchesOracle(*index, LabeledDigraph::FromEdges(4, 2, {}),
                      "edgeless");
}

TEST_P(LcrConformanceTest, Figure1PaperQueries) {
  using namespace figure1;
  const auto& [spec, seed] = GetParam();
  (void)seed;
  auto index = MakeIndex(spec).lcr;
  ASSERT_NE(index, nullptr);
  const LabeledDigraph g = LabeledGraph();
  index->Build(g);
  // §2.2: Qr(A, G, (friendOf ∪ follows)*) = false — every A-G path
  // includes worksFor.
  EXPECT_FALSE(index->Query(kA, kG, MakeLabelSet({kFriendOf, kFollows})));
  // ... and allowing worksFor makes A -> G reachable (plain path ADHG uses
  // follows, friendOf, worksFor).
  EXPECT_TRUE(
      index->Query(kA, kG, MakeLabelSet({kFriendOf, kFollows, kWorksFor})));
  // §4.1: L reaches M under (worksFor)* via p1.
  EXPECT_TRUE(index->Query(kL, kM, MakeLabelSet({kWorksFor})));
  // ... and under (follows ∪ worksFor)* via p2 as well.
  EXPECT_TRUE(index->Query(kL, kM, MakeLabelSet({kFollows, kWorksFor})));
  // ... but not under (friendOf)* alone.
  EXPECT_FALSE(index->Query(kL, kM, MakeLabelSet({kFriendOf})));
  // A reaches M exactly when {follows, worksFor} ⊆ alpha.
  EXPECT_TRUE(index->Query(kA, kM, MakeLabelSet({kFollows, kWorksFor})));
  EXPECT_FALSE(index->Query(kA, kM, MakeLabelSet({kFollows})));
  EXPECT_FALSE(index->Query(kA, kM, MakeLabelSet({kWorksFor})));
  // Reflexivity (empty path, Kleene-star semantics).
  EXPECT_TRUE(index->Query(kC, kC, 0));
}

INSTANTIATE_TEST_SUITE_P(
    AllLcrIndexes, LcrConformanceTest,
    ::testing::Combine(::testing::ValuesIn(DefaultIndexSpecs(IndexFamily::kLcr)),
                       ::testing::Values(211, 222)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(LcrFactoryTest, UnknownSpecReturnsEmpty) {
  EXPECT_FALSE(MakeIndex("lcr:bogus"));
}

TEST(LcrFactoryTest, CompletenessMatchesTable2) {
  // Complete: GTC (Zou et al.), P2H+. Partial: landmark, online BFS.
  const LabeledDigraph g = figure1::LabeledGraph();
  for (const char* spec : {"lcr:gtc", "lcr:pll", "lcr:tree"}) {
    auto index = MakeIndex(spec).lcr;
    index->Build(g);
    EXPECT_TRUE(index->IsComplete()) << spec;
  }
  for (const char* spec : {"lcr:landmark", "lcr:bfs"}) {
    auto index = MakeIndex(spec).lcr;
    index->Build(g);
    EXPECT_FALSE(index->IsComplete()) << spec;
  }
}

}  // namespace
}  // namespace reach
