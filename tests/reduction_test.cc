#include "reduction/reduction.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/topological.h"
#include "core/index_factory.h"
#include "reduction/reducing_index.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(TransitiveReductionTest, RemovesShortcutEdges) {
  // 0->1->2 plus shortcut 0->2: the shortcut must go.
  Digraph g = Digraph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  Digraph r = TransitiveReduction(g);
  EXPECT_EQ(r.NumEdges(), 2u);
  EXPECT_TRUE(r.HasEdge(0, 1));
  EXPECT_TRUE(r.HasEdge(1, 2));
  EXPECT_FALSE(r.HasEdge(0, 2));
}

TEST(TransitiveReductionTest, KeepsIrreducibleEdges) {
  Digraph diamond = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  Digraph r = TransitiveReduction(diamond);
  EXPECT_EQ(r.NumEdges(), 4u);
}

TEST(TransitiveReductionTest, ChainIsAlreadyReduced) {
  Digraph r = TransitiveReduction(Chain(10));
  EXPECT_EQ(r.NumEdges(), 9u);
}

class ReductionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionPropertyTest, TransitiveReductionPreservesReachability) {
  const Digraph g = RandomDag(48, 200, GetParam());
  const Digraph r = TransitiveReduction(g);
  EXPECT_LE(r.NumEdges(), g.NumEdges());
  EXPECT_TRUE(IsDag(r));
  TransitiveClosure before, after;
  before.Build(g);
  after.Build(r);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(before.Query(s, t), after.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST_P(ReductionPropertyTest, TransitiveReductionIsIdempotent) {
  const Digraph g = RandomDag(40, 160, GetParam() ^ 0x1);
  const Digraph once = TransitiveReduction(g);
  const Digraph twice = TransitiveReduction(once);
  EXPECT_EQ(once.Edges(), twice.Edges());
}

TEST(EquivalenceReductionTest, MergesTwins) {
  // 1 and 2 have identical in ({0}) and out ({3}) sets.
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EquivalenceReduction er = ReduceEquivalentVertices(g);
  EXPECT_EQ(er.merged, 1u);
  EXPECT_EQ(er.graph.NumVertices(), 3u);
  EXPECT_EQ(er.representative_of[1], er.representative_of[2]);
  EXPECT_NE(er.representative_of[0], er.representative_of[3]);
}

TEST(EquivalenceReductionTest, NoFalseMerges) {
  Digraph g = Chain(6);
  EquivalenceReduction er = ReduceEquivalentVertices(g);
  EXPECT_EQ(er.merged, 0u);
  EXPECT_EQ(er.graph.NumVertices(), 6u);
}

TEST(EquivalenceReductionTest, WideFanMergesAggressively) {
  // Star: 0 -> 1..20; all leaves are equivalent.
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 20; ++v) edges.push_back({0, v});
  EquivalenceReduction er =
      ReduceEquivalentVertices(Digraph::FromEdges(21, edges));
  EXPECT_EQ(er.merged, 19u);
  EXPECT_EQ(er.graph.NumVertices(), 2u);
}

TEST_P(ReductionPropertyTest, EquivalenceReductionPreservesClassReachability) {
  const Digraph g = RandomDag(40, 120, GetParam() ^ 0x2);
  EquivalenceReduction er = ReduceEquivalentVertices(g);
  TransitiveClosure before, after;
  before.Build(g);
  after.Build(er.graph);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      if (s == t) continue;
      const VertexId rs = er.representative_of[s];
      const VertexId rt = er.representative_of[t];
      // Merged distinct vertices are mutually unreachable in a DAG.
      const bool expected = before.Query(s, t);
      const bool mapped = (rs == rt) ? false : after.Query(rs, rt);
      ASSERT_EQ(mapped, expected) << s << "->" << t;
    }
  }
}

TEST_P(ReductionPropertyTest, ReducingIndexIsExactOnCyclicGraphs) {
  const Digraph g = RandomDigraph(44, 130, GetParam() ^ 0x3);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (const bool er : {false, true}) {
    for (const bool tr : {false, true}) {
      ReducingIndex index(MakeIndex("pll").plain, er, tr);
      index.Build(g);
      for (VertexId s = 0; s < g.NumVertices(); ++s) {
        for (VertexId t = 0; t < g.NumVertices(); ++t) {
          ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
              << "er=" << er << " tr=" << tr << " " << s << "->" << t;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionPropertyTest,
                         ::testing::Values(191, 192, 193, 194));

TEST(ReducingIndexTest, ReductionShrinksTheIndexedGraph) {
  // A fan (0 -> 1..10 -> 11, all equivalent middles) with a shortcut edge
  // 0 -> 11: ER merges the middle layer, TR drops the shortcut.
  std::vector<Edge> edges = {{0, 11}};
  for (VertexId v = 1; v <= 10; ++v) {
    edges.push_back({0, v});
    edges.push_back({v, 11});
  }
  const Digraph g = Digraph::FromEdges(12, edges);
  ReducingIndex reduced(MakeIndex("pll").plain, /*er=*/true, /*tr=*/true);
  reduced.Build(g);
  EXPECT_EQ(reduced.ReducedNumVertices(), 3u);
  EXPECT_EQ(reduced.ReducedNumEdges(), 2u);
  EXPECT_EQ(reduced.Name(), "reduce(er+tr)+pll");
  EXPECT_TRUE(reduced.Query(0, 11));
  EXPECT_TRUE(reduced.Query(3, 11));
  EXPECT_FALSE(reduced.Query(3, 4));  // merged twins are not mutually reachable
}

TEST(ReducingIndexTest, CompletenessFollowsInner) {
  const Digraph g = Chain(5);
  ReducingIndex complete(MakeIndex("pll").plain, true, false);
  ReducingIndex partial(MakeIndex("grail").plain, true, false);
  complete.Build(g);
  partial.Build(g);
  EXPECT_TRUE(complete.IsComplete());
  EXPECT_FALSE(partial.IsComplete());
}

}  // namespace
}  // namespace reach
