// Pathological-graph sweep: every plain index against the oracle on the
// degenerate shapes that break naive implementations — single vertices,
// universal self-loops, complete digraphs, stars, bipartite fans, long
// chains with shortcuts, two-regime mixtures, and multi-root forests.

#include <string>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "core/index_factory.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

Digraph SingleVertex() { return Digraph::FromEdges(1, {}); }

Digraph SingleVertexWithSelfLoop() { return Digraph::FromEdges(1, {{0, 0}}); }

Digraph AllSelfLoops(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < n; ++v) edges.push_back({v, v});
  // plus a chain so there is real reachability too
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Digraph::FromEdges(n, edges);
}

Digraph CompleteDigraph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  return Digraph::FromEdges(n, edges);
}

Digraph InStar(VertexId n) {  // everyone points at vertex 0
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.push_back({v, 0});
  return Digraph::FromEdges(n, edges);
}

Digraph OutStar(VertexId n) {  // vertex 0 points at everyone
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.push_back({0, v});
  return Digraph::FromEdges(n, edges);
}

Digraph BipartiteFan(VertexId half) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < half; ++u) {
    for (VertexId v = half; v < 2 * half; ++v) edges.push_back({u, v});
  }
  return Digraph::FromEdges(2 * half, edges);
}

Digraph ChainWithShortcuts(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  for (VertexId v = 0; v + 5 < n; v += 3) edges.push_back({v, v + 5});
  return Digraph::FromEdges(n, edges);
}

Digraph TwoRegimes() {
  // A big SCC feeding a tree: mixes both extremes.
  std::vector<Edge> edges = Cycle(10).Edges();
  for (VertexId v = 10; v < 30; ++v) edges.push_back({(v - 10) % 10, v});
  for (VertexId v = 30; v < 40; ++v) edges.push_back({v - 20, v});
  return Digraph::FromEdges(40, edges);
}

Digraph DisconnectedForest() {
  std::vector<Edge> edges;
  for (VertexId root : {0u, 10u, 20u}) {
    for (VertexId i = 1; i < 10; ++i) {
      edges.push_back({root + (i - 1) / 2, root + i});
    }
  }
  return Digraph::FromEdges(30, edges);
}

class EdgeCaseTest : public ::testing::TestWithParam<std::string> {
 protected:
  void ExpectExact(const Digraph& g, const std::string& context) {
    auto index = MakeIndex(GetParam()).plain;
    ASSERT_NE(index, nullptr);
    TransitiveClosure oracle;
    index->Build(g);
    oracle.Build(g);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(index->Query(s, t), oracle.Query(s, t))
            << context << ": " << index->Name() << " on " << s << "->" << t;
      }
    }
  }
};

TEST_P(EdgeCaseTest, SingleVertex) { ExpectExact(SingleVertex(), "single"); }

TEST_P(EdgeCaseTest, SingleVertexSelfLoop) {
  ExpectExact(SingleVertexWithSelfLoop(), "selfloop1");
}

TEST_P(EdgeCaseTest, SelfLoopsEverywhere) {
  ExpectExact(AllSelfLoops(12), "selfloops");
}

TEST_P(EdgeCaseTest, CompleteDigraph) {
  ExpectExact(CompleteDigraph(10), "complete");
}

TEST_P(EdgeCaseTest, InStar) { ExpectExact(InStar(24), "instar"); }

TEST_P(EdgeCaseTest, OutStar) { ExpectExact(OutStar(24), "outstar"); }

TEST_P(EdgeCaseTest, BipartiteFan) {
  ExpectExact(BipartiteFan(8), "bipartite");
}

TEST_P(EdgeCaseTest, ChainWithShortcuts) {
  ExpectExact(ChainWithShortcuts(30), "shortcuts");
}

TEST_P(EdgeCaseTest, SccFeedingTree) { ExpectExact(TwoRegimes(), "mixed"); }

TEST_P(EdgeCaseTest, DisconnectedForest) {
  ExpectExact(DisconnectedForest(), "forest");
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, EdgeCaseTest,
    ::testing::ValuesIn(DefaultIndexSpecs(IndexFamily::kPlain)), [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace reach
