// §5 "parallel computation of indexes": the multi-threaded GRAIL build
// must be bit-identical to the serial one and exact.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "plain/grail.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(ParallelBuildTest, ParallelGrailMatchesSerialAnswers) {
  const Digraph g = RandomDag(300, 1200, 3);
  Grail serial(/*k=*/8, /*seed=*/99, /*num_threads=*/1);
  Grail parallel(/*k=*/8, /*seed=*/99, /*num_threads=*/4);
  serial.Build(g);
  parallel.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      ASSERT_EQ(serial.MaybeReachable(s, t), parallel.MaybeReachable(s, t))
          << s << "->" << t;
      ASSERT_EQ(serial.Query(s, t), parallel.Query(s, t));
    }
  }
}

TEST(ParallelBuildTest, ParallelGrailIsExact) {
  const Digraph g = RandomDag(200, 700, 5);
  Grail parallel(/*k=*/6, /*seed=*/1, /*num_threads=*/3);
  parallel.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(parallel.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(ParallelBuildTest, MoreThreadsThanColumnsIsFine) {
  const Digraph g = Chain(50);
  Grail index(/*k=*/2, /*seed=*/5, /*num_threads=*/16);
  index.Build(g);
  EXPECT_TRUE(index.Query(0, 49));
  EXPECT_FALSE(index.Query(49, 0));
}

TEST(ParallelBuildTest, ZeroThreadsClampsToOne) {
  const Digraph g = Chain(10);
  Grail index(3, 5, 0);
  index.Build(g);
  EXPECT_TRUE(index.Query(0, 9));
}

TEST(ParallelBuildTest, RepeatedParallelBuildsAreDeterministic) {
  const Digraph g = RandomDag(150, 500, 8);
  Grail a(4, 42, 4), b(4, 42, 2);
  a.Build(g);
  b.Build(g);
  // Same seed, different thread counts: identical filter behavior.
  for (VertexId s = 0; s < g.NumVertices(); s += 3) {
    for (VertexId t = 0; t < g.NumVertices(); t += 3) {
      ASSERT_EQ(a.MaybeReachable(s, t), b.MaybeReachable(s, t));
    }
  }
}

}  // namespace
}  // namespace reach
