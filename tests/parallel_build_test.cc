// §5 "parallel computation of indexes": every parallelized builder must
// produce answers (and for the 2-hop labelings, the *labeling itself*)
// bit-identical to its serial build, on the paper's Figure 1 and on
// larger random graphs. Also covers the BatchQuery parallel query API.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/query_workload.h"
#include "core/scc_condensing_index.h"
#include "graph/figure1.h"
#include "graph/generators.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "plain/bfl.h"
#include "plain/ferrari.h"
#include "plain/grail.h"
#include "plain/pruned_two_hop.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

// The 4k-vertex determinism workhorse DAG shared by the suites below.
const Digraph& BigDag() {
  static const Digraph g = RandomDag(4096, 16384, 0xda9);
  return g;
}

// Strided sample of vertex pairs — dense enough to catch any divergence,
// sparse enough to keep the suite fast.
template <typename SerialFn, typename ParallelFn>
void ExpectSameAnswers(const Digraph& g, SerialFn&& serial,
                       ParallelFn&& parallel, VertexId stride = 1) {
  for (VertexId s = 0; s < g.NumVertices(); s += stride) {
    for (VertexId t = 0; t < g.NumVertices(); t += stride) {
      ASSERT_EQ(serial(s, t), parallel(s, t)) << s << "->" << t;
    }
  }
}

TEST(ParallelBuildTest, ParallelGrailMatchesSerialAnswers) {
  const Digraph g = RandomDag(300, 1200, 3);
  Grail serial(/*k=*/8, /*seed=*/99, /*num_threads=*/1);
  Grail parallel(/*k=*/8, /*seed=*/99, /*num_threads=*/4);
  serial.Build(g);
  parallel.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      ASSERT_EQ(serial.MaybeReachable(s, t), parallel.MaybeReachable(s, t))
          << s << "->" << t;
      ASSERT_EQ(serial.Query(s, t), parallel.Query(s, t));
    }
  }
}

TEST(ParallelBuildTest, ParallelGrailIsExact) {
  const Digraph g = RandomDag(200, 700, 5);
  Grail parallel(/*k=*/6, /*seed=*/1, /*num_threads=*/3);
  parallel.Build(g);
  TransitiveClosure oracle;
  oracle.Build(g);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(parallel.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(ParallelBuildTest, MoreThreadsThanColumnsIsFine) {
  const Digraph g = Chain(50);
  Grail index(/*k=*/2, /*seed=*/5, /*num_threads=*/16);
  index.Build(g);
  EXPECT_TRUE(index.Query(0, 49));
  EXPECT_FALSE(index.Query(49, 0));
}

TEST(ParallelBuildTest, ZeroThreadsMeansPoolDefault) {
  const Digraph g = Chain(10);
  Grail index(3, 5, 0);
  index.Build(g);
  EXPECT_TRUE(index.Query(0, 9));
}

TEST(ParallelBuildTest, RepeatedParallelBuildsAreDeterministic) {
  const Digraph g = RandomDag(150, 500, 8);
  Grail a(4, 42, 4), b(4, 42, 2);
  a.Build(g);
  b.Build(g);
  // Same seed, different thread counts: identical filter behavior.
  for (VertexId s = 0; s < g.NumVertices(); s += 3) {
    for (VertexId t = 0; t < g.NumVertices(); t += 3) {
      ASSERT_EQ(a.MaybeReachable(s, t), b.MaybeReachable(s, t));
    }
  }
}

TEST(ParallelBuildTest, TransitiveClosureMatchesSerialOnFigure1) {
  const Digraph g = figure1::PlainGraph();
  TransitiveClosure serial(/*num_threads=*/1), parallel(/*num_threads=*/4);
  serial.Build(g);
  parallel.Build(g);
  ExpectSameAnswers(
      g, [&](VertexId s, VertexId t) { return serial.Query(s, t); },
      [&](VertexId s, VertexId t) { return parallel.Query(s, t); });
}

TEST(ParallelBuildTest, TransitiveClosureMatchesSerialOnBigDag) {
  const Digraph& g = BigDag();
  TransitiveClosure serial(/*num_threads=*/1), parallel(/*num_threads=*/8);
  serial.Build(g);
  parallel.Build(g);
  EXPECT_EQ(serial.IndexSizeBytes(), parallel.IndexSizeBytes());
  ExpectSameAnswers(
      g, [&](VertexId s, VertexId t) { return serial.Query(s, t); },
      [&](VertexId s, VertexId t) { return parallel.Query(s, t); },
      /*stride=*/61);
}

TEST(ParallelBuildTest, TransitiveClosureParallelHandlesCycles) {
  const Digraph g = RandomDigraph(400, 1600, 17);
  TransitiveClosure serial(1), parallel(4);
  serial.Build(g);
  parallel.Build(g);
  ExpectSameAnswers(
      g, [&](VertexId s, VertexId t) { return serial.Query(s, t); },
      [&](VertexId s, VertexId t) { return parallel.Query(s, t); },
      /*stride=*/3);
}

// For the 2-hop labelings the contract is stronger than equal answers:
// the committed label arrays — and therefore the Save() bytes — must be
// bit-identical to the serial build's.
TEST(ParallelBuildTest, PrunedTwoHopLabelingIsBitIdentical) {
  for (const VertexOrder order :
       {VertexOrder::kDegree, VertexOrder::kTopological}) {
    const Digraph& g = BigDag();
    PrunedTwoHop serial(order, /*seed=*/11, /*num_threads=*/1);
    PrunedTwoHop parallel(order, /*seed=*/11, /*num_threads=*/8);
    serial.Build(g);
    parallel.Build(g);
    ASSERT_EQ(serial.TotalLabelEntries(), parallel.TotalLabelEntries());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(serial.InLabels(v), parallel.InLabels(v)) << "Lin " << v;
      ASSERT_EQ(serial.OutLabels(v), parallel.OutLabels(v)) << "Lout " << v;
    }
    std::ostringstream serial_bytes, parallel_bytes;
    ASSERT_TRUE(serial.Save(serial_bytes));
    ASSERT_TRUE(parallel.Save(parallel_bytes));
    EXPECT_EQ(serial_bytes.str(), parallel_bytes.str());
  }
}

TEST(ParallelBuildTest, PrunedTwoHopMatchesSerialOnFigure1) {
  const Digraph g = figure1::PlainGraph();
  PrunedTwoHop serial(VertexOrder::kDegree, 11, 1);
  PrunedTwoHop parallel(VertexOrder::kDegree, 11, 4);
  serial.Build(g);
  parallel.Build(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(serial.InLabels(v), parallel.InLabels(v));
    ASSERT_EQ(serial.OutLabels(v), parallel.OutLabels(v));
  }
  EXPECT_TRUE(parallel.Query(figure1::kA, figure1::kG));  // §2.1
}

TEST(ParallelBuildTest, PrunedTwoHopParallelHandlesCycles) {
  const Digraph g = RandomDigraph(500, 2500, 23);
  PrunedTwoHop serial(VertexOrder::kDegree, 7, 1);
  PrunedTwoHop parallel(VertexOrder::kDegree, 7, 6);
  serial.Build(g);
  parallel.Build(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(serial.InLabels(v), parallel.InLabels(v));
    ASSERT_EQ(serial.OutLabels(v), parallel.OutLabels(v));
  }
}

TEST(ParallelBuildTest, FerrariMatchesSerialOnBigDag) {
  const Digraph& g = BigDag();
  Ferrari serial(/*k=*/4, /*num_threads=*/1);
  Ferrari parallel(/*k=*/4, /*num_threads=*/8);
  serial.Build(g);
  parallel.Build(g);
  EXPECT_EQ(serial.IndexSizeBytes(), parallel.IndexSizeBytes());
  ExpectSameAnswers(
      g, [&](VertexId s, VertexId t) { return serial.Query(s, t); },
      [&](VertexId s, VertexId t) { return parallel.Query(s, t); },
      /*stride=*/61);
}

TEST(ParallelBuildTest, BflMatchesSerialOnBigDag) {
  const Digraph& g = BigDag();
  Bfl serial(/*filter_bits=*/128, /*seed=*/9, /*num_threads=*/1);
  Bfl parallel(/*filter_bits=*/128, /*seed=*/9, /*num_threads=*/8);
  serial.Build(g);
  parallel.Build(g);
  ExpectSameAnswers(
      g, [&](VertexId s, VertexId t) { return serial.Query(s, t); },
      [&](VertexId s, VertexId t) { return parallel.Query(s, t); },
      /*stride=*/61);
}

TEST(ParallelBuildTest, LcrTwoHopMatchesSerialOnFigure1) {
  const LabeledDigraph g = figure1::LabeledGraph();
  PrunedLabeledTwoHop serial(/*num_threads=*/1);
  PrunedLabeledTwoHop parallel(/*num_threads=*/4);
  serial.Build(g);
  parallel.Build(g);
  ASSERT_EQ(serial.TotalEntries(), parallel.TotalEntries());
  ASSERT_EQ(serial.IndexSizeBytes(), parallel.IndexSizeBytes());
  const LabelSet all_masks = LabelBit(figure1::kNumLabels) - 1;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      for (LabelSet mask = 0; mask <= all_masks; ++mask) {
        ASSERT_EQ(serial.Query(s, t, mask), parallel.Query(s, t, mask))
            << s << "->" << t << " mask=" << mask;
      }
    }
  }
  // The §2.2 worked example must still hold after a parallel build.
  EXPECT_FALSE(parallel.Query(figure1::kA, figure1::kG,
                              LabelBit(figure1::kFriendOf) |
                                  LabelBit(figure1::kFollows)));
}

TEST(ParallelBuildTest, LcrTwoHopMatchesSerialOnRandomGraph) {
  const LabeledDigraph g = RandomLabeledDigraph(512, 2048, 4, 0x1c4);
  PrunedLabeledTwoHop serial(1), parallel(8);
  serial.Build(g);
  parallel.Build(g);
  ASSERT_EQ(serial.TotalEntries(), parallel.TotalEntries());
  ASSERT_EQ(serial.IndexSizeBytes(), parallel.IndexSizeBytes());
  for (VertexId s = 0; s < g.NumVertices(); s += 5) {
    for (VertexId t = 0; t < g.NumVertices(); t += 7) {
      for (LabelSet mask = 0; mask < 16; ++mask) {
        ASSERT_EQ(serial.Query(s, t, mask), parallel.Query(s, t, mask))
            << s << "->" << t << " mask=" << mask;
      }
    }
  }
}

TEST(ParallelBuildTest, BatchQueryMatchesSerialLoop) {
  const Digraph& g = BigDag();
  const std::vector<QueryPair> queries = RandomPairs(g, 5000, 0xb0);
  PrunedTwoHop pll(VertexOrder::kDegree, 11, 1);
  pll.Build(g);
  TransitiveClosure tc(1);
  tc.Build(g);
  for (const size_t threads : {1ul, 4ul}) {
    const std::vector<uint8_t> pll_batch = pll.BatchQuery(queries, threads);
    const std::vector<uint8_t> tc_batch = tc.BatchQuery(queries, threads);
    ASSERT_EQ(pll_batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryPair& q = queries[i];
      ASSERT_EQ(pll_batch[i] != 0, pll.Query(q.source, q.target)) << i;
      ASSERT_EQ(tc_batch[i] != 0, tc.Query(q.source, q.target)) << i;
    }
  }
}

TEST(ParallelBuildTest, BatchQueryThroughSccWrapper) {
  const Digraph g = RandomDigraph(600, 2400, 31);
  auto index = MakeCondensing<TransitiveClosure>(/*num_threads=*/2);
  index->Build(g);
  const std::vector<QueryPair> queries = RandomPairs(g, 2000, 0xcc);
  const std::vector<uint8_t> batch = index->BatchQuery(queries, 4);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch[i] != 0, index->Query(queries[i].source,
                                          queries[i].target))
        << i;
  }
}

}  // namespace
}  // namespace reach
