#include "core/query_workload.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "traversal/online_search.h"

namespace reach {
namespace {

TEST(QueryWorkloadTest, RandomPairsCountAndRange) {
  Digraph g = RandomDigraph(50, 200, 1);
  auto queries = RandomPairs(g, 100, 2);
  EXPECT_EQ(queries.size(), 100u);
  for (const auto& q : queries) {
    EXPECT_LT(q.source, g.NumVertices());
    EXPECT_LT(q.target, g.NumVertices());
  }
}

TEST(QueryWorkloadTest, RandomPairsDeterministic) {
  Digraph g = RandomDigraph(50, 200, 1);
  auto a = RandomPairs(g, 50, 3);
  auto b = RandomPairs(g, 50, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].target, b[i].target);
  }
}

TEST(QueryWorkloadTest, ReachablePairsAreReachable) {
  Digraph g = RandomDigraph(60, 300, 4);
  SearchWorkspace ws;
  for (const auto& q : ReachablePairs(g, 200, 5)) {
    EXPECT_TRUE(BfsReachability(g, q.source, q.target, ws));
  }
}

TEST(QueryWorkloadTest, UnreachablePairsAreUnreachable) {
  Digraph g = RandomDigraph(60, 120, 6);
  SearchWorkspace ws;
  auto queries = UnreachablePairs(g, 200, 7);
  EXPECT_FALSE(queries.empty());
  for (const auto& q : queries) {
    EXPECT_FALSE(BfsReachability(g, q.source, q.target, ws));
  }
}

TEST(QueryWorkloadTest, RandomLcrQueriesMaskWidth) {
  LabeledDigraph g = RandomLabeledDigraph(40, 200, 6, 8);
  for (const auto& q : RandomLcrQueries(g, 100, /*labels_per_query=*/2, 9)) {
    EXPECT_EQ(__builtin_popcount(q.allowed), 2);
    EXPECT_LT(q.source, g.NumVertices());
  }
}

TEST(QueryWorkloadTest, RandomLcrQueriesClampToNumLabels) {
  LabeledDigraph g = RandomLabeledDigraph(40, 200, 3, 8);
  for (const auto& q : RandomLcrQueries(g, 20, /*labels_per_query=*/10, 9)) {
    EXPECT_EQ(__builtin_popcount(q.allowed), 3);
  }
}

TEST(QueryWorkloadTest, ReachableLcrQueriesHoldUnderConstraint) {
  LabeledDigraph g = RandomLabeledDigraph(50, 400, 4, 10);
  auto queries = ReachableLcrQueries(g, 100, 2, 11);
  EXPECT_FALSE(queries.empty());
  // Verify with a simple constrained BFS.
  for (const auto& q : queries) {
    std::vector<bool> seen(g.NumVertices(), false);
    std::vector<VertexId> stack = {q.source};
    seen[q.source] = true;
    bool found = q.source == q.target;
    while (!stack.empty() && !found) {
      VertexId v = stack.back();
      stack.pop_back();
      for (const auto& arc : g.OutArcs(v)) {
        if (((LabelSet{1} << arc.label) & q.allowed) == 0) continue;
        if (arc.vertex == q.target) {
          found = true;
          break;
        }
        if (!seen[arc.vertex]) {
          seen[arc.vertex] = true;
          stack.push_back(arc.vertex);
        }
      }
    }
    EXPECT_TRUE(found) << q.source << "->" << q.target << " mask "
                       << q.allowed;
  }
}

TEST(QueryWorkloadTest, EmptyGraphYieldsNoQueries) {
  Digraph g = Digraph::FromEdges(0, {});
  EXPECT_TRUE(RandomPairs(g, 10, 1).empty());
  EXPECT_TRUE(ReachablePairs(g, 10, 1).empty());
  EXPECT_TRUE(UnreachablePairs(g, 10, 1).empty());
}

}  // namespace
}  // namespace reach
