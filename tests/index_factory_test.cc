// Unit tests for the unified construction entry point
// (core/index_factory.h): spec parsing, capability reporting, aliases,
// and the default rosters. Conformance of the indexes themselves lives in
// plain_conformance_test.cc / lcr_conformance_test.cc.

#include "core/index_factory.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/figure1.h"

namespace reach {
namespace {

TEST(IndexSpecTest, ParsesPlainSpecWithParameters) {
  const IndexSpec spec("grail:k=5");
  EXPECT_EQ(spec.text, "grail:k=5");
  EXPECT_FALSE(spec.labeled);
  EXPECT_EQ(spec.base, "grail");
  EXPECT_EQ(spec.Param("k", 3), 5u);
  EXPECT_EQ(spec.Param("missing", 7), 7u);
}

TEST(IndexSpecTest, ParsesLcrSpecWithMultipleParameters) {
  const IndexSpec spec("lcr:landmark:k=8:b=3");
  EXPECT_TRUE(spec.labeled);
  EXPECT_EQ(spec.base, "landmark");
  EXPECT_EQ(spec.Param("k", 16), 8u);
  EXPECT_EQ(spec.Param("b", 2), 3u);
}

TEST(IndexSpecTest, BareNameHasNoParameters) {
  const IndexSpec spec("pll");
  EXPECT_FALSE(spec.labeled);
  EXPECT_EQ(spec.base, "pll");
  EXPECT_EQ(spec.Param("k", 42), 42u);
}

TEST(IndexFactoryTest, UnknownSpecsReturnEmpty) {
  EXPECT_FALSE(MakeIndex("nonsense"));
  EXPECT_FALSE(MakeIndex("lcr:nonsense"));
  EXPECT_FALSE(MakeIndex(""));
}

TEST(IndexFactoryTest, PlainSpecSetsExactlyPlain) {
  MadeIndex made = MakeIndex("pll");
  ASSERT_TRUE(made);
  EXPECT_NE(made.plain, nullptr);
  EXPECT_EQ(made.lcr, nullptr);
  EXPECT_FALSE(made.caps.labeled);
  EXPECT_TRUE(made.caps.dynamic);       // 2-hop supports ApplyUpdate
  EXPECT_TRUE(made.caps.decremental);   // ... including kDelete batches
  EXPECT_TRUE(made.caps.complete);
  EXPECT_TRUE(made.caps.serializable);  // versioned Save/Load envelope
}

TEST(IndexFactoryTest, LcrSpecSetsExactlyLcr) {
  MadeIndex made = MakeIndex("lcr:pll");
  ASSERT_TRUE(made);
  EXPECT_EQ(made.plain, nullptr);
  EXPECT_NE(made.lcr, nullptr);
  EXPECT_TRUE(made.caps.labeled);
  EXPECT_TRUE(made.caps.dynamic);
  EXPECT_TRUE(made.caps.decremental);
  EXPECT_TRUE(made.caps.complete);
}

TEST(IndexFactoryTest, PartialIndexesReportIncomplete) {
  MadeIndex grail = MakeIndex("grail:k=5");
  ASSERT_TRUE(grail);
  EXPECT_FALSE(grail.caps.complete);  // GRAIL prunes, then falls back
  EXPECT_FALSE(grail.caps.dynamic);
  EXPECT_FALSE(grail.caps.decremental);  // never without dynamic
  EXPECT_FALSE(grail.caps.serializable);

  MadeIndex bfs = MakeIndex("lcr:bfs");
  ASSERT_TRUE(bfs);
  EXPECT_FALSE(bfs.caps.complete);  // pure online baseline
}

TEST(IndexFactoryTest, AutoAdvisorIsDeferred) {
  MadeIndex made = MakeIndex("auto");
  ASSERT_TRUE(made);
  // The advisor picks its technique at Build time, so completeness and
  // serializability cannot be promised up front.
  EXPECT_FALSE(made.caps.complete);
  EXPECT_FALSE(made.caps.serializable);
}

TEST(IndexFactoryTest, HistoricalLcrAliasesStillConstruct) {
  for (const char* alias : {"lcr:lcr-bfs", "lcr:jin-tree", "lcr:p2h"}) {
    MadeIndex made = MakeIndex(alias);
    EXPECT_TRUE(made) << alias;
    EXPECT_NE(made.lcr, nullptr) << alias;
  }
}

TEST(IndexFactoryTest, ParametersReachTheTechnique) {
  MadeIndex a = MakeIndex("bfl:bits=64");
  MadeIndex b = MakeIndex("bfl:bits=512");
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  const Digraph g = figure1::PlainGraph();
  a.plain->Build(g);
  b.plain->Build(g);
  EXPECT_LT(a.plain->IndexSizeBytes(), b.plain->IndexSizeBytes());
}

TEST(IndexFactoryTest, PlainRosterConstructsAndAnswersFigure1) {
  const Digraph g = figure1::PlainGraph();
  const std::vector<std::string> roster = DefaultIndexSpecs(IndexFamily::kPlain);
  EXPECT_GE(roster.size(), 20u);
  for (const std::string& spec : roster) {
    MadeIndex made = MakeIndex(spec);
    ASSERT_TRUE(made) << spec;
    ASSERT_NE(made.plain, nullptr) << spec;
    EXPECT_FALSE(made.caps.labeled) << spec;
    made.plain->Build(g);
    EXPECT_TRUE(made.plain->Query(figure1::kA, figure1::kG)) << spec;  // §2.1
    EXPECT_FALSE(made.plain->Query(figure1::kG, figure1::kA)) << spec;
  }
}

TEST(IndexFactoryTest, LcrRosterIsPrefixedAndConstructs) {
  const std::vector<std::string> roster = DefaultIndexSpecs(IndexFamily::kLcr);
  EXPECT_GE(roster.size(), 5u);
  for (const std::string& spec : roster) {
    EXPECT_EQ(spec.rfind("lcr:", 0), 0u) << spec;
    MadeIndex made = MakeIndex(spec);
    ASSERT_TRUE(made) << spec;
    EXPECT_NE(made.lcr, nullptr) << spec;
    EXPECT_TRUE(made.caps.labeled) << spec;
  }
}

TEST(IndexFactoryTest, CapsMatchIndexSelfReports) {
  for (IndexFamily family : {IndexFamily::kPlain, IndexFamily::kLcr}) {
    for (const std::string& spec : DefaultIndexSpecs(family)) {
      if (spec == "auto") continue;  // deferred until Build
      MadeIndex made = MakeIndex(spec);
      ASSERT_TRUE(made) << spec;
      if (made.plain != nullptr) {
        EXPECT_EQ(made.caps.complete, made.plain->IsComplete()) << spec;
        EXPECT_EQ(made.caps.serializable, made.plain->SupportsSerialization())
            << spec;
        // `decremental` is exactly "dynamic and the index takes kDelete".
        const auto* dyn =
            dynamic_cast<const DynamicReachabilityIndex*>(made.plain.get());
        EXPECT_EQ(made.caps.decremental,
                  dyn != nullptr && dyn->SupportsDeletions())
            << spec;
        if (made.caps.decremental) EXPECT_TRUE(made.caps.dynamic) << spec;
      } else {
        EXPECT_EQ(made.caps.complete, made.lcr->IsComplete()) << spec;
      }
    }
  }
}

TEST(IndexFactoryTest, SpecDocCapsMatchFactoryCaps) {
  // The --help roster's capability column is documentation of MakeIndex's
  // IndexCaps — pin every row to the factory's actual report so the two
  // can never drift.
  for (IndexFamily family : {IndexFamily::kPlain, IndexFamily::kLcr}) {
    for (const SpecDoc& doc : DescribeIndexSpecs(family)) {
      if (doc.spec.find("<any>") != std::string::npos) {
        EXPECT_EQ(doc.caps, "follows the wrapped spec");
        continue;
      }
      MadeIndex made = MakeIndex(doc.spec);
      ASSERT_TRUE(made) << doc.spec;
      const char* expected = made.caps.decremental ? "dynamic (insert+delete)"
                             : made.caps.dynamic   ? "dynamic (insert-only)"
                                                   : "static";
      EXPECT_EQ(doc.caps, expected) << doc.spec;
    }
  }
}

}  // namespace
}  // namespace reach
