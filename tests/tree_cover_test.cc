#include "plain/tree_cover.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "plain/dual_labeling.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(TreeCoverTest, ChainHasOneIntervalPerVertex) {
  TreeCover index;
  index.Build(Chain(8));
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(index.NumIntervals(v), 1u);
  EXPECT_TRUE(index.Query(0, 7));
  EXPECT_FALSE(index.Query(7, 0));
}

TEST(TreeCoverTest, NonTreeEdgeForcesInheritance) {
  // Two parallel branches joined at the bottom: 0->1->3, 0->2->3.
  // One of the edges into 3 is a non-tree edge whose interval must be
  // inherited up to the root.
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  TreeCover index;
  index.Build(g);
  EXPECT_TRUE(index.Query(1, 3));
  EXPECT_TRUE(index.Query(2, 3));
  EXPECT_TRUE(index.Query(0, 3));
  EXPECT_FALSE(index.Query(1, 2));
  EXPECT_FALSE(index.Query(2, 1));
}

TEST(TreeCoverTest, AdjacentIntervalsAreMerged) {
  // A tree: the single subtree interval per vertex suffices; total
  // intervals == n even after inheritance (children are merged away).
  TreeCover index;
  Digraph g = RandomTree(64, 21);
  index.Build(g);
  EXPECT_EQ(index.TotalIntervals(), 64u);
}

TEST(TreeCoverTest, MatchesOracleOnDags) {
  for (uint64_t seed : {51, 52, 53, 54}) {
    Digraph g = RandomDag(48, 140, seed);
    TreeCover index;
    TransitiveClosure oracle;
    index.Build(g);
    oracle.Build(g);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
            << s << "->" << t << " seed " << seed;
      }
    }
  }
}

TEST(TreeCoverTest, IndexSizeGrowsWithNonTreeEdges) {
  // Same vertex count: a tree vs a dense DAG; the dense DAG needs more
  // intervals (the survey's main drawback of the tree-cover approach).
  TreeCover tree_index, dense_index;
  tree_index.Build(RandomTree(128, 3));
  dense_index.Build(RandomDag(128, 1024, 3));
  EXPECT_GT(dense_index.TotalIntervals(), tree_index.TotalIntervals());
}

TEST(DualLabelingTest, PureTreeHasNoLinks) {
  DualLabeling index;
  index.Build(RandomTree(50, 5));
  EXPECT_EQ(index.NumLinks(), 0u);
  EXPECT_TRUE(index.Query(0, 17));
}

TEST(DualLabelingTest, SingleCrossEdge) {
  // Deterministic DFS from 0 builds the tree 0->{1,2}, 1->3, 2->4; the
  // edge 4->1 crosses into the earlier branch, so it must become a link.
  Digraph g =
      Digraph::FromEdges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {4, 1}});
  DualLabeling index;
  index.Build(g);
  EXPECT_EQ(index.NumLinks(), 1u);
  EXPECT_TRUE(index.Query(4, 1));
  EXPECT_TRUE(index.Query(4, 3));  // via the link then tree
  EXPECT_TRUE(index.Query(2, 3));  // 2 -> 4 -> 1 -> 3
  EXPECT_FALSE(index.Query(1, 2));
  EXPECT_FALSE(index.Query(3, 4));
}

TEST(DualLabelingTest, ForwardEdgesAreDropped) {
  // 0->1->2 plus the forward edge 0->2 (implied by the tree).
  Digraph g = Digraph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  DualLabeling index;
  index.Build(g);
  EXPECT_EQ(index.NumLinks(), 0u);
  EXPECT_TRUE(index.Query(0, 2));
}

TEST(DualLabelingTest, ChainedLinksCompose) {
  // Three branches under 0; cross edges hop from a later branch into an
  // earlier one, so both are links and reaching 6 -> ... -> 2 composes
  // them through the link closure: 5 -link-> 3 -> 4 -link-> 1 -> 2.
  Digraph g = Digraph::FromEdges(
      7, {{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}, {5, 3}, {4, 1}});
  DualLabeling index;
  index.Build(g);
  EXPECT_EQ(index.NumLinks(), 2u);
  EXPECT_TRUE(index.Query(5, 2));  // 5 -link-> 3 -> 4 -link-> 1 -> 2
  EXPECT_TRUE(index.Query(5, 4));
  EXPECT_FALSE(index.Query(2, 5));
  EXPECT_FALSE(index.Query(1, 3));
}

TEST(DualLabelingTest, MatchesOracleOnSparseDags) {
  for (uint64_t seed : {61, 62, 63}) {
    // Sparse: few non-tree edges, the design's target regime.
    Digraph g = RandomDag(40, 55, seed);
    DualLabeling index;
    TransitiveClosure oracle;
    index.Build(g);
    oracle.Build(g);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(index.Query(s, t), oracle.Query(s, t))
            << s << "->" << t << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace reach
