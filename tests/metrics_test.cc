// Unit tests for the observability layer (src/obs): registry instrument
// semantics (including per-thread cells and the runtime disable switch),
// probe macros, build-phase timers, and the JSON/table exporters.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "obs/build_phase_timer.h"
#include "obs/metrics_exporter.h"
#include "obs/metrics_registry.h"
#include "obs/query_probe.h"
#include "traversal/transitive_closure.h"

namespace reach {
namespace {

TEST(CounterTest, AddAccumulatesAndNameIsStable) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("widgets");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  EXPECT_EQ(c.name(), "widgets");
  // Same name -> same instrument.
  EXPECT_EQ(&registry.GetCounter("widgets"), &c);
  EXPECT_NE(&registry.GetCounter("other"), &c);
}

TEST(CounterTest, PerThreadCellsMergeOnScrape) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("parallel");
  constexpr int kThreads = 4;
  constexpr uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c]() {
      for (uint64_t j = 0; j < kAddsPerThread; ++j) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kAddsPerThread);
}

TEST(CounterTest, RuntimeDisableMakesAddANoOp) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("gated");
  registry.set_enabled(false);
  c.Add(100);
  EXPECT_EQ(c.Value(), 0u);
  registry.set_enabled(true);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("threads");
  g.Set(4);
  g.Set(8);
  EXPECT_EQ(g.Value(), 8.0);
  registry.set_enabled(false);
  g.Set(16);
  EXPECT_EQ(g.Value(), 8.0);
}

TEST(HistogramTest, Log2BucketMapping) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("latency");
  // floor(log2(v + 1)): 0 -> bucket 0; 1, 2 -> bucket 1; 3..6 -> bucket 2.
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(6);
  const MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("latency");
  ASSERT_GE(hs.buckets.size(), 3u);
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 2u);
  EXPECT_EQ(hs.buckets[2], 2u);
  EXPECT_EQ(hs.count, 5u);
  EXPECT_EQ(hs.sum, 12u);
  EXPECT_DOUBLE_EQ(hs.Mean(), 12.0 / 5.0);
}

TEST(HistogramTest, BucketBoundsMatchTheRecordMapping) {
  // Bucket b covers [2^b - 1, 2^(b+1) - 2]; bounds must agree with where
  // Record actually lands values.
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 6u);
  // Adjacent buckets tile the value space with no gaps.
  for (size_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b) + 1,
              Histogram::BucketLowerBound(b + 1));
  }
  // The last bucket absorbs everything above it.
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndResetZeroes) {
  MetricsRegistry registry;
  registry.GetCounter("b").Add(2);
  registry.GetCounter("a").Add(1);
  registry.GetGauge("g").Set(3.5);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a");  // std::map: sorted keys
  EXPECT_EQ(snap.counters.at("a"), 1u);
  EXPECT_EQ(snap.counters.at("b"), 2u);
  EXPECT_EQ(snap.gauges.at("g"), 3.5);

  registry.Reset();
  const MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.at("a"), 0u);
  EXPECT_EQ(after.counters.at("b"), 0u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(QueryProbeTest, MacrosRecordWhenCompiledIn) {
  QueryProbe probe;
  REACH_PROBE_INC(probe, queries);
  REACH_PROBE_ADD(probe, vertices_visited, 7);
  if (kMetricsCompiled) {
    EXPECT_EQ(probe.queries, 1u);
    EXPECT_EQ(probe.vertices_visited, 7u);
  } else {
    EXPECT_EQ(probe.queries, 0u);
    EXPECT_EQ(probe.vertices_visited, 0u);
  }
}

TEST(QueryProbeTest, ResetMergeAndFieldEnumeration) {
  QueryProbe a;
  a.queries = 2;
  a.labels_scanned = 5;
  QueryProbe b;
  b.queries = 3;
  b.fallbacks = 1;
  a.MergeFrom(b);
  EXPECT_EQ(a.queries, 5u);
  EXPECT_EQ(a.labels_scanned, 5u);
  EXPECT_EQ(a.fallbacks, 1u);

  size_t fields = 0;
  uint64_t total = 0;
  std::string first_field;
  a.ForEachField([&](const char* name, uint64_t value) {
    if (fields == 0) first_field = name;
    ++fields;
    total += value;
  });
  EXPECT_EQ(fields, 8u);
  // Exporters and the bench probe-delta helper rely on this ordering.
  EXPECT_EQ(first_field, "queries");
  EXPECT_EQ(total, 5u + 5u + 1u);

  a.Reset();
  a.ForEachField([](const char*, uint64_t value) { EXPECT_EQ(value, 0u); });
}

TEST(BuildPhaseTimerTest, RecordsPhasesInOrder) {
  std::vector<PhaseTiming> phases;
  {
    BuildPhaseTimer t1(&phases, "first");
    t1.Stop();
    t1.Stop();  // idempotent: no double record
    BuildPhaseTimer t2(&phases, "second");
  }
  if (kMetricsCompiled) {
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].name, "first");
    EXPECT_EQ(phases[1].name, "second");
    EXPECT_GE(phases[0].elapsed.count(), 0);
  } else {
    EXPECT_TRUE(phases.empty());
  }
}

TEST(PeakRssTest, ReportsSomethingOnLinux) {
#ifdef __linux__
  EXPECT_GT(PeakRssBytes(), 0u);
#else
  (void)PeakRssBytes();  // must at least not crash
#endif
}

IndexReport SampleReport() {
  IndexReport report;
  report.name = "sample \"quoted\"";
  report.complete = true;
  report.size_bytes = 1024;
  report.num_entries = 16;
  report.build_ns = 123456;
  report.peak_build_memory_bytes = 4096;
  report.phases.push_back({"order", std::chrono::nanoseconds(1000)});
  report.phases.push_back({"label", std::chrono::nanoseconds(2000)});
  report.probe.queries = 9;
  report.probe.labels_scanned = 27;
  return report;
}

TEST(MetricsExporterTest, JsonContainsEveryFieldAndEscapes) {
  MetricsExporter exporter;
  exporter.Add(SampleReport());
  MetricsRegistry registry;
  registry.GetCounter("c1").Add(5);
  exporter.SetRegistrySnapshot(registry.Snapshot());

  const std::string json = exporter.ToJson();
  EXPECT_NE(json.find("\"schema\": \"reach.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"sample \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"size_bytes\": 1024"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\": 123456"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"order\""), std::string::npos);
  EXPECT_NE(json.find("\"label\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"labels_scanned\": 27"), std::string::npos);
  EXPECT_NE(json.find("\"c1\": 5"), std::string::npos);
  // Every probe field name must appear (ForEachField is the source of
  // truth, so new fields flow into the export automatically).
  QueryProbe{}.ForEachField([&](const char* name, uint64_t) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  });
  // Structurally balanced.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(MetricsExporterTest, HistogramsCarryBucketBounds) {
  MetricsExporter exporter;
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("h");
  h.Record(0);  // bucket 0: [0, 0]
  h.Record(4);  // bucket 2: [3, 6]
  exporter.SetRegistrySnapshot(registry.Snapshot());
  const std::string json = exporter.ToJson();
  // One [lo, hi] pair per emitted bucket, aligned with "buckets".
  EXPECT_NE(json.find("\"buckets\": [1, 0, 1]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bucket_bounds\": [[0, 0], [1, 2], [3, 6]]"),
            std::string::npos)
      << json;
}

TEST(MetricsExporterTest, JsonIsDeterministic) {
  MetricsExporter exporter;
  exporter.Add(SampleReport());
  EXPECT_EQ(exporter.ToJson(), exporter.ToJson());
}

TEST(MetricsExporterTest, WriteJsonFileRoundTrips) {
  MetricsExporter exporter;
  exporter.Add(SampleReport());
  const std::string path =
      ::testing::TempDir() + "/reach_metrics_test_output.json";
  ASSERT_TRUE(exporter.WriteJsonFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), exporter.ToJson());
  std::remove(path.c_str());
}

TEST(MetricsExporterTest, WriteJsonFileFailsOnBadPath) {
  MetricsExporter exporter;
  exporter.Add(SampleReport());
  EXPECT_FALSE(exporter.WriteJsonFile("/nonexistent-dir/x/y/z.json"));
}

TEST(MetricsExporterTest, TableListsIndexesAndPhases) {
  MetricsExporter exporter;
  exporter.Add(SampleReport());
  const std::string table = exporter.ToTable();
  EXPECT_NE(table.find("sample"), std::string::npos);
  if (kMetricsCompiled) {
    EXPECT_NE(table.find("order"), std::string::npos);
  }
}

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(MakeIndexReportTest, CollectsFromARealIndex) {
  TransitiveClosure tc;
  const Digraph g = RandomDag(32, 96, /*seed=*/5);
  tc.Build(g);
  tc.ResetProbe();
  size_t positives = 0;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    positives += tc.Query(s, (s + 1) % g.NumVertices()) ? 1 : 0;
  }
  const IndexReport report = MakeIndexReport(tc);
  EXPECT_EQ(report.name, "tc");
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.size_bytes, tc.IndexSizeBytes());
  EXPECT_GT(report.build_ns, 0u);
  if (kMetricsCompiled) {
    EXPECT_EQ(report.probe.queries, g.NumVertices());
    EXPECT_EQ(report.probe.positives, positives);
    ASSERT_EQ(report.phases.size(), 2u);
    EXPECT_EQ(report.phases[0].name, "condense");
    EXPECT_EQ(report.phases[1].name, "closure_sweep");
#ifdef __linux__
    EXPECT_GT(report.peak_build_memory_bytes, 0u);
#endif
  }
}

}  // namespace
}  // namespace reach
