// Long randomized differential soak: interleaved edge insertions,
// incremental deletions, queries, serialization round-trips, and
// threshold-driven rebuilds on the dynamic indexes, continuously
// cross-checked against a freshly built oracle. Catches state-machine
// bugs that single-operation tests miss.

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/rng.h"
#include "plain/dagger.h"
#include "plain/dbl.h"
#include "plain/pruned_two_hop.h"
#include "traversal/online_search.h"

namespace reach {
namespace {

class DynamicSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicSoakTest, InterleavedOperationsStayConsistent) {
  const uint64_t seed = GetParam();
  const VertexId n = 24;
  Xoshiro256ss rng(seed);

  std::vector<Edge> edges = RandomDigraph(n, 30, seed).Edges();
  // `current` is the build-time base of the incremental indexes (TOL,
  // DAGGER); they keep referencing it across every ApplyUpdate, so it is
  // never reassigned. DBL full-rebuilds on deletion, so it gets its own
  // graph object that is swapped right before each re-Build.
  const Digraph current = Digraph::FromEdges(n, edges);
  Digraph dbl_graph = current;

  PrunedTwoHop tol;
  Dbl dbl(seed);
  Dagger dagger(2, seed);
  tol.Build(current);
  dbl.Build(dbl_graph);
  dagger.Build(current);

  SearchWorkspace ws;
  for (int step = 0; step < 400; ++step) {
    const uint64_t op = rng.NextBounded(100);
    if (op < 30) {
      // Insert a random edge everywhere.
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (std::find(edges.begin(), edges.end(), Edge{u, v}) != edges.end()) {
        continue;  // keep `edges` duplicate-free (deletes remove all)
      }
      const UpdateBatch batch = {EdgeUpdate::Insert(u, v)};
      ASSERT_TRUE(tol.ApplyUpdate(batch).ok());
      ASSERT_TRUE(dbl.ApplyUpdate(batch).ok());
      ASSERT_TRUE(dagger.ApplyUpdate(batch).ok());
      edges.push_back({u, v});
    } else if (op < 35 && !edges.empty()) {
      // Delete a random edge: TOL and DAGGER absorb it incrementally
      // (folding the backlog when the staleness budget says so); DBL is
      // insert-only (Table 1) and must reject, then rebuild.
      const size_t victim = rng.NextBounded(edges.size());
      const Edge e = edges[victim];
      edges.erase(edges.begin() + victim);
      const UpdateBatch batch = {EdgeUpdate::Delete(e.source, e.target)};
      const UpdateResult tol_result = tol.ApplyUpdate(batch);
      ASSERT_TRUE(tol_result.ok());
      if (tol_result.rebuild_recommended) {
        ASSERT_TRUE(tol.RebuildFromUpdates());
      }
      const UpdateResult dagger_result = dagger.ApplyUpdate(batch);
      ASSERT_TRUE(dagger_result.ok());
      if (dagger_result.rebuild_recommended) {
        ASSERT_TRUE(dagger.RebuildFromUpdates());
      }
      ASSERT_EQ(dbl.ApplyUpdate(batch).status, UpdateStatus::kRejected);
      dbl_graph = Digraph::FromEdges(n, edges);
      dbl.Build(dbl_graph);
    } else if (op < 40) {
      // Serialize + restore the 2-hop labeling mid-stream, then reattach
      // the graph (Load drops it) by rebuilding from current state. Save
      // refuses while deletion damage is outstanding — fold it first.
      std::stringstream buffer;
      if (!tol.Save(buffer)) {
        ASSERT_GT(tol.Damage(), 0u);
        ASSERT_TRUE(tol.RebuildFromUpdates());
        ASSERT_TRUE(tol.Save(buffer));
      }
      PrunedTwoHop loaded;
      ASSERT_TRUE(loaded.Load(buffer));
      const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
      ASSERT_EQ(loaded.Query(s, t), tol.Query(s, t));
    } else {
      // Differential query.
      const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
      const Digraph truth = Digraph::FromEdges(n, edges);
      const bool expected = BfsReachability(truth, s, t, ws);
      ASSERT_EQ(tol.Query(s, t), expected)
          << "tol step " << step << " seed " << seed;
      ASSERT_EQ(dbl.Query(s, t), expected)
          << "dbl step " << step << " seed " << seed;
      ASSERT_EQ(dagger.Query(s, t), expected)
          << "dagger step " << step << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicSoakTest,
                         ::testing::Values(271, 272, 273, 274));

}  // namespace
}  // namespace reach
