// Long randomized differential soak: interleaved edge insertions,
// queries, serialization round-trips, and deletion-rebuilds on the
// dynamic indexes, continuously cross-checked against a freshly built
// oracle. Catches state-machine bugs that single-operation tests miss.

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/rng.h"
#include "plain/dagger.h"
#include "plain/dbl.h"
#include "plain/pruned_two_hop.h"
#include "traversal/online_search.h"

namespace reach {
namespace {

class DynamicSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicSoakTest, InterleavedOperationsStayConsistent) {
  const uint64_t seed = GetParam();
  const VertexId n = 24;
  Xoshiro256ss rng(seed);

  std::vector<Edge> edges = RandomDigraph(n, 30, seed).Edges();
  Digraph current = Digraph::FromEdges(n, edges);

  PrunedTwoHop tol;
  Dbl dbl(seed);
  Dagger dagger(2, seed);
  tol.Build(current);
  dbl.Build(current);
  dagger.Build(current);

  SearchWorkspace ws;
  // `current` must outlive references the indexes hold; rebuilds swap in
  // a fresh graph object and re-Build every index.
  for (int step = 0; step < 400; ++step) {
    const uint64_t op = rng.NextBounded(100);
    if (op < 30) {
      // Insert a random edge everywhere.
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (std::find(edges.begin(), edges.end(), Edge{u, v}) != edges.end()) {
        continue;  // keep `edges` duplicate-free (RemoveEdge removes all)
      }
      tol.InsertEdge(u, v);
      dbl.InsertEdge(u, v);
      dagger.InsertEdge(u, v);
      edges.push_back({u, v});
    } else if (op < 35 && !edges.empty()) {
      // Remove a random edge: TOL removes in place; the others rebuild.
      const size_t victim = rng.NextBounded(edges.size());
      const Edge e = edges[victim];
      edges.erase(edges.begin() + victim);
      tol.RemoveEdgeAndRebuild(e.source, e.target);
      current = Digraph::FromEdges(n, edges);
      dbl.Build(current);
      dagger.Build(current);
    } else if (op < 40) {
      // Serialize + restore the 2-hop labeling mid-stream, then reattach
      // the graph (Load drops it) by rebuilding from current state.
      std::stringstream buffer;
      ASSERT_TRUE(tol.Save(buffer));
      PrunedTwoHop loaded;
      ASSERT_TRUE(loaded.Load(buffer));
      const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
      ASSERT_EQ(loaded.Query(s, t), tol.Query(s, t));
    } else {
      // Differential query.
      const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
      const Digraph truth = Digraph::FromEdges(n, edges);
      const bool expected = BfsReachability(truth, s, t, ws);
      ASSERT_EQ(tol.Query(s, t), expected)
          << "tol step " << step << " seed " << seed;
      ASSERT_EQ(dbl.Query(s, t), expected)
          << "dbl step " << step << " seed " << seed;
      ASSERT_EQ(dagger.Query(s, t), expected)
          << "dagger step " << step << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicSoakTest,
                         ::testing::Values(271, 272, 273, 274));

}  // namespace
}  // namespace reach
