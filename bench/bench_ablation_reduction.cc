// Ablation of the §3.4 graph reductions (SCARAB/ER/RCN row): how much do
// equivalence reduction and transitive reduction shrink the graph handed
// to an index, and what does that do to build time, index size, and query
// latency — for a complete (PLL) and a partial (GRAIL) inner index.
//
// Row naming: reduction/<graph>/<pipeline>+<index>/<phase>.

#include <memory>

#include "bench_common.h"
#include "graph/rng.h"
#include "core/index_factory.h"
#include "reduction/reducing_index.h"

namespace reach::bench {
namespace {

void RegisterAll() {
  const VertexId n = 2048;
  auto* graphs = new std::vector<GraphCase>();
  graphs->push_back({"scalefree-d3", ScaleFreeDag(n, 3, kSeed + 130)});
  // A redundancy-rich DAG: layered with extra shortcut edges.
  {
    std::vector<Edge> edges = LayeredDag(16, 128, 3, kSeed + 131).Edges();
    Xoshiro256ss rng(kSeed + 132);
    for (int i = 0; i < 2000; ++i) {
      const VertexId layer = static_cast<VertexId>(rng.NextBounded(14));
      const VertexId u =
          layer * 128 + static_cast<VertexId>(rng.NextBounded(128));
      const VertexId v = (layer + 2) * 128 +
                         static_cast<VertexId>(rng.NextBounded(128));
      edges.push_back({u, v});
    }
    graphs->push_back(
        {"layered+shortcuts", Digraph::FromEdges(16 * 128, edges)});
  }

  const struct {
    const char* name;
    bool er;
    bool tr;
  } pipelines[] = {{"none", false, false},
                   {"er", true, false},
                   {"tr", false, true},
                   {"er+tr", true, true}};

  for (const GraphCase& gc : *graphs) {
    auto* queries =
        new std::vector<QueryPair>(RandomPairs(gc.graph, 1000, kSeed + 133));
    for (const char* inner : {"pll", "grail"}) {
      for (const auto& pipeline : pipelines) {
        const std::string base = "reduction/" + gc.name + "/" +
                                 pipeline.name + "+" + inner;
        ::benchmark::RegisterBenchmark(
            (base + "/build").c_str(),
            [&gc, inner, pipeline](::benchmark::State& state) {
              size_t bytes = 0, rv = 0, re = 0;
              for (auto _ : state) {
                ReducingIndex index(MakeIndex(inner).plain, pipeline.er,
                                    pipeline.tr);
                index.Build(gc.graph);
                bytes = index.IndexSizeBytes();
                rv = index.ReducedNumVertices();
                re = index.ReducedNumEdges();
              }
              state.counters["index_KB"] =
                  static_cast<double>(bytes) / 1024.0;
              state.counters["reduced_vertices"] = static_cast<double>(rv);
              state.counters["reduced_edges"] = static_cast<double>(re);
            })
            ->Iterations(1)
            ->Unit(::benchmark::kMillisecond);

        auto built = std::make_shared<ReducingIndex>(MakeIndex(inner).plain,
                                                     pipeline.er,
                                                     pipeline.tr);
        built->Build(gc.graph);
        ::benchmark::RegisterBenchmark(
            (base + "/query_rand").c_str(),
            [built, queries](::benchmark::State& state) {
              RunQueryLoop(state, *queries, [&](const QueryPair& q) {
                return built->Query(q.source, q.target);
              });
            })
            ->Iterations(2)
            ->Unit(::benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_ablation_reduction",
                                 &reach::bench::RegisterAll);
}
