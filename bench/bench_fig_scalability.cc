// Regenerates the §3.1/§5 scalability claims as a figure-style series:
// build time and index size versus graph size (fixed average degree) for
// the linear-cost partial indexes (GRAIL, Ferrari, BFL, IP) against the
// complete indexes whose cost curves bend (PLL, tree cover, and the naive
// TC whose quadratic size is the §2.3 infeasibility argument).
//
// Row naming: scalability/<index>/n=<n>.

#include <memory>

#include "bench_common.h"
#include "core/index_factory.h"

namespace reach::bench {
namespace {

void RegisterAll() {
  auto* graphs = new std::vector<GraphCase>();
  for (VertexId n : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    graphs->push_back({"n=" + std::to_string(n),
                       RandomDag(n, 4 * static_cast<size_t>(n), kSeed + 90)});
  }

  const std::vector<std::string> specs = {"grail",    "ferrari", "bfl",
                                          "ip",       "pll",     "treecover",
                                          "tc"};
  for (const GraphCase& gc : *graphs) {
    for (const std::string& spec : specs) {
      ::benchmark::RegisterBenchmark(
          ("scalability/" + spec + "/" + gc.name).c_str(),
          [&gc, spec](::benchmark::State& state) {
            size_t bytes = 0;
            IndexStats stats;
            for (auto _ : state) {
              auto index = MakeIndex(spec).plain;
              index->Build(gc.graph);
              bytes = index->IndexSizeBytes();
              stats = index->Stats();
              state.SetIterationTime(
                  static_cast<double>(stats.build_time.count()) / 1e9);
            }
            ReportBuildCounters(state, stats);
            state.counters["index_KB"] =
                static_cast<double>(bytes) / 1024.0;
            state.counters["bytes_per_vertex"] = ::benchmark::Counter(
                static_cast<double>(bytes) / gc.graph.NumVertices());
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(::benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_fig_scalability",
                                 &reach::bench::RegisterAll);
}
