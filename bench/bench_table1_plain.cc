// Regenerates Table 1 of the survey as an *empirical* comparison matrix:
// for every implemented plain reachability index (plus the §2.3 online
// baselines), on every benchmark graph family: build time, index size, and
// per-query latency on positive / negative / random workloads. Cyclic
// inputs additionally exercise the Input column (the §3.1 SCC reduction).
//
// Row naming: table1/<graph>/<index>/<phase>.

#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "plain/registry.h"

namespace reach::bench {
namespace {

struct BuiltIndex {
  std::unique_ptr<ReachabilityIndex> index;
  const Digraph* graph;
};

VertexId BenchN() {
  if (const char* env = std::getenv("REACH_BENCH_N")) {
    return static_cast<VertexId>(std::strtoul(env, nullptr, 10));
  }
  return 2048;
}

void RegisterAll() {
  const VertexId n = BenchN();
  auto* graphs = new std::vector<GraphCase>(PlainBenchGraphs(n));
  auto* workloads = new std::vector<PlainWorkload>();
  for (const GraphCase& gc : *graphs) {
    workloads->push_back(MakePlainWorkload(gc.graph, 1000));
  }

  for (size_t gi = 0; gi < graphs->size(); ++gi) {
    const GraphCase& gc = (*graphs)[gi];
    const PlainWorkload& wl = (*workloads)[gi];
    for (const std::string& spec : DefaultPlainIndexSpecs()) {
      // Dual labeling is designed for graphs with very few non-tree edges
      // (§3.1); on dense random inputs its O(t^2) link closure is the
      // documented anti-pattern, so benchmark it only where it is meant
      // to run.
      if (spec == "dual" && gc.name != "layered-deep") continue;

      const std::string base = "table1/" + gc.name + "/" + spec;
      // Build phase: fresh index per iteration.
      ::benchmark::RegisterBenchmark(
          (base + "/build").c_str(),
          [&gc, spec](::benchmark::State& state) {
            size_t bytes = 0;
            bool complete = false;
            for (auto _ : state) {
              auto index = MakePlainIndex(spec);
              index->Build(gc.graph);
              bytes = index->IndexSizeBytes();
              complete = index->IsComplete();
            }
            state.counters["index_KB"] =
                static_cast<double>(bytes) / 1024.0;
            state.counters["complete"] = complete ? 1 : 0;
            state.counters["vertices"] = static_cast<double>(
                gc.graph.NumVertices());
            state.counters["edges"] =
                static_cast<double>(gc.graph.NumEdges());
          })
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);

      // Query phases share one pre-built index.
      auto built = std::make_shared<BuiltIndex>();
      auto ensure_built = [built, &gc, spec]() {
        if (built->index == nullptr) {
          built->index = MakePlainIndex(spec);
          built->index->Build(gc.graph);
          built->graph = &gc.graph;
        }
      };
      const struct {
        const char* name;
        const std::vector<QueryPair>* queries;
      } phases[] = {{"query_pos", &wl.positive},
                    {"query_neg", &wl.negative},
                    {"query_rand", &wl.random}};
      for (const auto& phase : phases) {
        ::benchmark::RegisterBenchmark(
            (base + "/" + phase.name).c_str(),
            [ensure_built, built, queries = phase.queries](
                ::benchmark::State& state) {
              ensure_built();
              RunQueryLoop(state, *queries, [&](const QueryPair& q) {
                return built->index->Query(q.source, q.target);
              });
            })
            ->Iterations(2)
            ->Unit(::benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reach::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
