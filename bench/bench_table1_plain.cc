// Regenerates Table 1 of the survey as an *empirical* comparison matrix:
// for every implemented plain reachability index (plus the §2.3 online
// baselines), on every benchmark graph family: build time, index size, and
// per-query latency on positive / negative / random workloads. Cyclic
// inputs additionally exercise the Input column (the §3.1 SCC reduction).
//
// Row naming: table1/<graph>/<index>/<phase>.

#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "core/index_factory.h"

namespace reach::bench {
namespace {

struct BuiltIndex {
  std::unique_ptr<ReachabilityIndex> index;
  const Digraph* graph;
};

VertexId BenchN() {
  if (const char* env = std::getenv("REACH_BENCH_N")) {
    return static_cast<VertexId>(std::strtoul(env, nullptr, 10));
  }
  return 2048;
}

void RegisterAll() {
  const VertexId n = BenchN();
  auto* graphs = new std::vector<GraphCase>(PlainBenchGraphs(n));
  auto* workloads = new std::vector<PlainWorkload>();
  for (const GraphCase& gc : *graphs) {
    workloads->push_back(MakePlainWorkload(gc.graph, 1000));
  }

  for (size_t gi = 0; gi < graphs->size(); ++gi) {
    const GraphCase& gc = (*graphs)[gi];
    const PlainWorkload& wl = (*workloads)[gi];
    for (const std::string& spec : DefaultIndexSpecs(IndexFamily::kPlain)) {
      // Dual labeling is designed for graphs with very few non-tree edges
      // (§3.1); on dense random inputs its O(t^2) link closure is the
      // documented anti-pattern, so benchmark it only where it is meant
      // to run.
      if (spec == "dual" && gc.name != "layered-deep") continue;

      const std::string base = "table1/" + gc.name + "/" + spec;
      // Build phase: fresh index per iteration. The reported time is the
      // *index-measured* IndexStats::build_time (manual time), so the
      // bench table and the metrics report come from one stopwatch.
      ::benchmark::RegisterBenchmark(
          (base + "/build").c_str(),
          [&gc, spec](::benchmark::State& state) {
            size_t bytes = 0;
            bool complete = false;
            IndexStats stats;
            for (auto _ : state) {
              auto index = MakeIndex(spec).plain;
              index->Build(gc.graph);
              bytes = index->IndexSizeBytes();
              complete = index->IsComplete();
              stats = index->Stats();
              state.SetIterationTime(
                  static_cast<double>(stats.build_time.count()) / 1e9);
            }
            ReportBuildCounters(state, stats);
            state.counters["index_KB"] =
                static_cast<double>(bytes) / 1024.0;
            state.counters["complete"] = complete ? 1 : 0;
            state.counters["vertices"] = static_cast<double>(
                gc.graph.NumVertices());
            state.counters["edges"] =
                static_cast<double>(gc.graph.NumEdges());
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(::benchmark::kMillisecond);

      // Query phases share one pre-built index.
      auto built = std::make_shared<BuiltIndex>();
      auto ensure_built = [built, &gc, spec]() {
        if (built->index == nullptr) {
          built->index = MakeIndex(spec).plain;
          built->index->Build(gc.graph);
          built->graph = &gc.graph;
        }
      };
      const struct {
        const char* name;
        const std::vector<QueryPair>* queries;
        bool collect_report;  // last phase folds the index into the JSON
      } phases[] = {{"query_pos", &wl.positive, false},
                    {"query_neg", &wl.negative, false},
                    {"query_rand", &wl.random, true}};
      for (const auto& phase : phases) {
        ::benchmark::RegisterBenchmark(
            (base + "/" + phase.name).c_str(),
            [ensure_built, built, &gc, queries = phase.queries,
             collect = phase.collect_report](::benchmark::State& state) {
              ensure_built();
              const QueryProbe before = built->index->Probe();
              RunQueryLoop(state, *queries, [&](const QueryPair& q) {
                return built->index->Query(q.source, q.target);
              });
              ReportProbeDelta(state, before, built->index->Probe());
              if (collect) CollectIndexReport(gc.name, *built->index);
            })
            ->Iterations(2)
            ->Unit(::benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_table1_plain",
                                 &reach::bench::RegisterAll);
}
