// Regenerates Table 1 of the survey as an *empirical* comparison matrix:
// for every implemented plain reachability index (plus the §2.3 online
// baselines), on every benchmark graph family: build time, index size, and
// per-query latency on positive / negative / random workloads. Cyclic
// inputs additionally exercise the Input column (the §3.1 SCC reduction).
//
// Row naming: table1/<graph>/<index>/<phase>.

#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "core/fastpath_index.h"
#include "core/index_factory.h"
#include "obs/metrics_registry.h"

namespace reach::bench {
namespace {

struct BuiltIndex {
  std::unique_ptr<ReachabilityIndex> index;
  const Digraph* graph;
};

// Verdict stats for either fast-path wrapper instantiation; zeros for
// unwrapped indexes.
FastPathVerdictStats FastPathStatsOf(const ReachabilityIndex& index) {
  if (const auto* f = dynamic_cast<const FastPathIndex*>(&index)) {
    return f->VerdictStats();
  }
  if (const auto* f = dynamic_cast<const DynamicFastPathIndex*>(&index)) {
    return f->VerdictStats();
  }
  return {};
}

VertexId BenchN() {
  if (const char* env = std::getenv("REACH_BENCH_N")) {
    return static_cast<VertexId>(std::strtoul(env, nullptr, 10));
  }
  return 2048;
}

// The 90/10 answer-class-biased workloads of one graph.
struct BiasedWorkload {
  std::vector<QueryPair> neg90;
  std::vector<QueryPair> pos90;
};

void RegisterAll() {
  const VertexId n = BenchN();
  auto* graphs = new std::vector<GraphCase>(PlainBenchGraphs(n));
  auto* workloads = new std::vector<PlainWorkload>();
  auto* biased = new std::vector<BiasedWorkload>();
  for (const GraphCase& gc : *graphs) {
    workloads->push_back(MakePlainWorkload(gc.graph, 1000));
    biased->push_back(
        {BiasedPairs(gc.graph, /*unreachable_biased=*/true, 1000, kSeed + 30),
         BiasedPairs(gc.graph, /*unreachable_biased=*/false, 1000,
                     kSeed + 40)});
  }

  // The full roster plus fast-path-wrapped entries, so every table carries
  // a same-binary wrapped-vs-bare comparison for a 2-hop labeling and an
  // interval index.
  std::vector<std::string> specs = DefaultIndexSpecs(IndexFamily::kPlain);
  specs.push_back("pll:fastpath=1");
  specs.push_back("grail:fastpath=1");
  // Block-compressed label storage (docs/SNAPSHOTS.md): same labeling as
  // the bare "pll" row, so the table carries the size-vs-latency tradeoff
  // per graph family.
  specs.push_back("pll:compress=1");

  for (size_t gi = 0; gi < graphs->size(); ++gi) {
    const GraphCase& gc = (*graphs)[gi];
    const PlainWorkload& wl = (*workloads)[gi];
    const BiasedWorkload& bw = (*biased)[gi];
    for (const std::string& spec : specs) {
      // Dual labeling is designed for graphs with very few non-tree edges
      // (§3.1); on dense random inputs its O(t^2) link closure is the
      // documented anti-pattern, so benchmark it only where it is meant
      // to run.
      if (spec == "dual" && gc.name != "layered-deep") continue;

      const std::string base = "table1/" + gc.name + "/" + spec;
      // Build phase: fresh index per iteration. The reported time is the
      // *index-measured* IndexStats::build_time (manual time), so the
      // bench table and the metrics report come from one stopwatch.
      ::benchmark::RegisterBenchmark(
          (base + "/build").c_str(),
          [&gc, spec](::benchmark::State& state) {
            size_t bytes = 0;
            bool complete = false;
            IndexStats stats;
            for (auto _ : state) {
              auto index = MakeIndex(spec).plain;
              index->Build(gc.graph);
              bytes = index->IndexSizeBytes();
              complete = index->IsComplete();
              stats = index->Stats();
              state.SetIterationTime(
                  static_cast<double>(stats.build_time.count()) / 1e9);
            }
            ReportBuildCounters(state, stats);
            state.counters["index_KB"] =
                static_cast<double>(bytes) / 1024.0;
            state.counters["complete"] = complete ? 1 : 0;
            state.counters["vertices"] = static_cast<double>(
                gc.graph.NumVertices());
            state.counters["edges"] =
                static_cast<double>(gc.graph.NumEdges());
            const double bytes_per_vertex =
                static_cast<double>(bytes) /
                static_cast<double>(gc.graph.NumVertices());
            state.counters["bytes_per_vertex"] = bytes_per_vertex;
            MetricsRegistry& registry = MetricsRegistry::Global();
            const std::string row =
                "bench.table1." + gc.name + "." + spec;
            registry.GetGauge(row + ".bytes_per_vertex")
                .Set(bytes_per_vertex);
            if (spec.find("compress=1") != std::string::npos) {
              // PublishStorageGauges ran during this Build, so the global
              // gauge is this index's flat-equivalent / compressed ratio.
              const double ratio =
                  registry.GetGauge("index.compression_ratio").Value();
              state.counters["compression_ratio"] = ratio;
              registry.GetGauge(row + ".compression_ratio").Set(ratio);
            }
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(::benchmark::kMillisecond);

      // Query phases share one pre-built index.
      auto built = std::make_shared<BuiltIndex>();
      auto ensure_built = [built, &gc, spec]() {
        if (built->index == nullptr) {
          built->index = MakeIndex(spec).plain;
          built->index->Build(gc.graph);
          built->graph = &gc.graph;
        }
      };
      const struct {
        const char* name;
        const std::vector<QueryPair>* queries;
        bool collect_report;  // last phase folds the index into the JSON
      } phases[] = {{"query_pos", &wl.positive, false},
                    {"query_neg", &wl.negative, false},
                    {"query_neg90", &bw.neg90, false},
                    {"query_pos90", &bw.pos90, false},
                    {"query_rand", &wl.random, true}};
      for (const auto& phase : phases) {
        ::benchmark::RegisterBenchmark(
            (base + "/" + phase.name).c_str(),
            [ensure_built, built, &gc, queries = phase.queries,
             collect = phase.collect_report](::benchmark::State& state) {
              ensure_built();
              const QueryProbe before = built->index->Probe();
              const FastPathVerdictStats fp_before =
                  FastPathStatsOf(*built->index);
              RunQueryLoop(state, *queries, [&](const QueryPair& q) {
                return built->index->Query(q.source, q.target);
              });
              ReportProbeDelta(state, before, built->index->Probe());
              const FastPathVerdictStats fp_after =
                  FastPathStatsOf(*built->index);
              const double fp_total = static_cast<double>(
                  fp_after.Total() - fp_before.Total());
              if (fp_total > 0) {
                state.counters["fastpath_hit_rate"] =
                    static_cast<double>(fp_after.Decided() -
                                        fp_before.Decided()) /
                    fp_total;
              }
              if (collect) CollectIndexReport(gc.name, *built->index);
            })
            ->Iterations(2)
            ->Unit(::benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_table1_plain",
                                 &reach::bench::RegisterAll);
}
