#ifndef REACH_BENCH_BENCH_COMMON_H_
#define REACH_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the benchmark harness. Each bench binary
// regenerates one table/figure of EXPERIMENTS.md (see DESIGN.md §3 for the
// experiment index). Benchmarks use fixed iteration counts so a full
// harness run stays bounded; throughput/latency land in custom counters.

#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/query_workload.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/labeled_digraph.h"

namespace reach::bench {

inline constexpr uint64_t kSeed = 0xbe9c;

/// A named benchmark graph.
struct GraphCase {
  std::string name;
  Digraph graph;
};

/// The plain-graph roster: the structural regimes of the surveyed papers'
/// evaluations (sparse/dense random digraphs with SCCs, random DAGs,
/// scale-free citation-style DAGs, deep layered DAGs).
inline std::vector<GraphCase> PlainBenchGraphs(VertexId n) {
  return {
      {"er-cyclic-avg4", RandomDigraph(n, 4 * static_cast<size_t>(n), kSeed)},
      {"dag-avg4", RandomDag(n, 4 * static_cast<size_t>(n), kSeed + 1)},
      {"scalefree-d3", ScaleFreeDag(n, 3, kSeed + 2)},
      {"layered-deep", LayeredDag(n / 64 ? n / 64 : 1, 64, 3, kSeed + 3)},
  };
}

/// A plain query workload split by answer class.
struct PlainWorkload {
  std::vector<QueryPair> random;
  std::vector<QueryPair> positive;
  std::vector<QueryPair> negative;
};

inline PlainWorkload MakePlainWorkload(const Digraph& g, size_t count) {
  return {RandomPairs(g, count, kSeed + 10),
          ReachablePairs(g, count, kSeed + 11),
          UnreachablePairs(g, count, kSeed + 12)};
}

/// Labeled roster for the Table 2 benches.
struct LabeledGraphCase {
  std::string name;
  LabeledDigraph graph;
};

inline std::vector<LabeledGraphCase> LcrBenchGraphs(VertexId n) {
  return {
      {"er-L4-uniform", RandomLabeledDigraph(n, 4 * static_cast<size_t>(n),
                                             4, kSeed + 20)},
      {"er-L8-zipf",
       WithZipfLabels(RandomDigraph(n, 4 * static_cast<size_t>(n), kSeed + 21),
                      8, 1.2, kSeed + 22)},
  };
}

/// Runs `queries` through `fn` once per benchmark iteration and reports
/// per-query latency via the benchmark's counters.
template <typename Queries, typename Fn>
void RunQueryLoop(::benchmark::State& state, const Queries& queries,
                  Fn&& fn) {
  if (queries.empty()) {
    state.SkipWithError("empty workload");
    return;
  }
  size_t positives = 0;
  for (auto _ : state) {
    for (const auto& q : queries) positives += fn(q) ? 1 : 0;
  }
  ::benchmark::DoNotOptimize(positives);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["true_frac"] = ::benchmark::Counter(
      static_cast<double>(positives) /
      (static_cast<double>(state.iterations()) * queries.size()));
}

}  // namespace reach::bench

#endif  // REACH_BENCH_BENCH_COMMON_H_
