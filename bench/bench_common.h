#ifndef REACH_BENCH_BENCH_COMMON_H_
#define REACH_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the benchmark harness. Each bench binary
// regenerates one table/figure of EXPERIMENTS.md (see DESIGN.md §3 for the
// experiment index). Benchmarks use fixed iteration counts so a full
// harness run stays bounded; throughput/latency land in custom counters.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/index_stats.h"
#include "core/query_workload.h"
#include "core/reachability_index.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/labeled_digraph.h"
#include "graph/rng.h"
#include "obs/metrics_exporter.h"
#include "par/thread_pool.h"

namespace reach::bench {

inline constexpr uint64_t kSeed = 0xbe9c;

/// A named benchmark graph.
struct GraphCase {
  std::string name;
  Digraph graph;
};

/// The plain-graph roster: the structural regimes of the surveyed papers'
/// evaluations (sparse/dense random digraphs with SCCs, random DAGs,
/// scale-free citation-style DAGs, deep layered DAGs).
inline std::vector<GraphCase> PlainBenchGraphs(VertexId n) {
  return {
      {"er-cyclic-avg4", RandomDigraph(n, 4 * static_cast<size_t>(n), kSeed)},
      {"dag-avg4", RandomDag(n, 4 * static_cast<size_t>(n), kSeed + 1)},
      {"scalefree-d3", ScaleFreeDag(n, 3, kSeed + 2)},
      {"layered-deep", LayeredDag(n / 64 ? n / 64 : 1, 64, 3, kSeed + 3)},
  };
}

/// A plain query workload split by answer class.
struct PlainWorkload {
  std::vector<QueryPair> random;
  std::vector<QueryPair> positive;
  std::vector<QueryPair> negative;
};

inline PlainWorkload MakePlainWorkload(const Digraph& g, size_t count) {
  return {RandomPairs(g, count, kSeed + 10),
          ReachablePairs(g, count, kSeed + 11),
          UnreachablePairs(g, count, kSeed + 12)};
}

/// A 90/10 answer-class-biased workload: `count` pairs, 90% unreachable
/// (`unreachable_biased`) or 90% reachable, deterministically shuffled.
/// The unreachable-biased mix is the regime §5 highlights (sparse
/// real-world workloads are negative-dominated) and the one the fast-path
/// layer and negative-result cache target.
inline std::vector<QueryPair> BiasedPairs(const Digraph& g,
                                          bool unreachable_biased,
                                          size_t count, uint64_t seed) {
  const size_t major_count = count * 9 / 10;
  std::vector<QueryPair> pairs =
      unreachable_biased ? UnreachablePairs(g, major_count, seed)
                         : ReachablePairs(g, major_count, seed);
  const std::vector<QueryPair> minor =
      unreachable_biased ? ReachablePairs(g, count - major_count, seed + 1)
                         : UnreachablePairs(g, count - major_count, seed + 1);
  pairs.insert(pairs.end(), minor.begin(), minor.end());
  Xoshiro256ss rng(seed + 2);
  for (size_t i = pairs.size(); i > 1; --i) {
    std::swap(pairs[i - 1], pairs[rng.NextBounded(i)]);
  }
  return pairs;
}

/// Labeled roster for the Table 2 benches.
struct LabeledGraphCase {
  std::string name;
  LabeledDigraph graph;
};

inline std::vector<LabeledGraphCase> LcrBenchGraphs(VertexId n) {
  return {
      {"er-L4-uniform", RandomLabeledDigraph(n, 4 * static_cast<size_t>(n),
                                             4, kSeed + 20)},
      {"er-L8-zipf",
       WithZipfLabels(RandomDigraph(n, 4 * static_cast<size_t>(n), kSeed + 21),
                      8, 1.2, kSeed + 22)},
  };
}

/// Records the parallelism level of a bench row so BENCH JSON carries it:
/// pass the explicit thread count a sweep used, or 0 for "the pool
/// default" (what `num_threads = 0` builders resolve to). Every harness
/// helper below stamps this; sweeps overwrite it with their own value.
inline void ReportThreads(::benchmark::State& state, size_t threads = 0) {
  state.counters["threads"] =
      static_cast<double>(ResolveThreads(threads));
}

/// Runs `queries` through `fn` once per benchmark iteration and reports
/// per-query latency via the benchmark's counters. The query loop itself
/// is serial, so the row's `threads` counter is 1.
template <typename Queries, typename Fn>
void RunQueryLoop(::benchmark::State& state, const Queries& queries,
                  Fn&& fn) {
  if (queries.empty()) {
    state.SkipWithError("empty workload");
    return;
  }
  size_t positives = 0;
  for (auto _ : state) {
    for (const auto& q : queries) positives += fn(q) ? 1 : 0;
  }
  ::benchmark::DoNotOptimize(positives);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["true_frac"] = ::benchmark::Counter(
      static_cast<double>(positives) /
      (static_cast<double>(state.iterations()) * queries.size()));
  ReportThreads(state, 1);
}

/// Like `RunQueryLoop`, but drives the whole workload through the
/// index's `BatchQuery` API (`threads` as passed; 0 = pool default).
inline void RunBatchQueryLoop(::benchmark::State& state,
                              const ReachabilityIndex& index,
                              const std::vector<QueryPair>& queries,
                              size_t threads = 0) {
  if (queries.empty()) {
    state.SkipWithError("empty workload");
    return;
  }
  size_t positives = 0;
  for (auto _ : state) {
    const std::vector<uint8_t> results = index.BatchQuery(queries, threads);
    for (const uint8_t r : results) positives += r;
  }
  ::benchmark::DoNotOptimize(positives);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["true_frac"] = ::benchmark::Counter(
      static_cast<double>(positives) /
      (static_cast<double>(state.iterations()) * queries.size()));
  ReportThreads(state, threads);
}

/// The exporter every bench binary accumulates `IndexReport`s into;
/// `EmitBenchMetrics()` renders it after the run.
inline MetricsExporter& BenchExporter() {
  static MetricsExporter exporter;
  return exporter;
}

/// Publishes the index-reported build statistics as benchmark counters —
/// the single source of truth for indexing time (satisfying the "don't
/// re-time what the index already measured" rule): `stat_build_ms` comes
/// from `IndexStats::build_time`, `peak_rss_MB` from the build's
/// getrusage reading.
inline void ReportBuildCounters(::benchmark::State& state,
                                const IndexStats& stats) {
  state.counters["stat_build_ms"] =
      static_cast<double>(stats.build_time.count()) / 1e6;
  state.counters["peak_rss_MB"] =
      static_cast<double>(stats.peak_build_memory_bytes) / (1024.0 * 1024.0);
  ReportThreads(state);
}

/// Publishes the probe delta between two snapshots (taken around a query
/// phase) as per-query benchmark counters (`probe_<field>`); the
/// `probe_queries` counter itself is the raw count.
inline void ReportProbeDelta(::benchmark::State& state,
                             const QueryProbe& before,
                             const QueryProbe& after) {
  std::vector<std::pair<const char*, uint64_t>> b, a;
  before.ForEachField(
      [&](const char* name, uint64_t v) { b.emplace_back(name, v); });
  after.ForEachField(
      [&](const char* name, uint64_t v) { a.emplace_back(name, v); });
  // `queries` is the first ForEachField field by contract.
  const uint64_t queries = a[0].second - b[0].second;
  if (queries == 0) return;
  for (size_t i = 0; i < a.size(); ++i) {
    const double delta = static_cast<double>(a[i].second - b[i].second);
    state.counters[std::string("probe_") + a[i].first] =
        i == 0 ? delta : delta / static_cast<double>(queries);
  }
}

/// Collects `index` into the bench-wide exporter under
/// "<graph>/<index-name>". Call once per built index, after its query
/// phases ran, so the report carries both build phases and probe counts.
template <typename Index>
void CollectIndexReport(const std::string& graph_name, const Index& index) {
  IndexReport report = MakeIndexReport(index);
  report.name = graph_name + "/" + report.name;
  BenchExporter().Add(std::move(report));
}

/// Renders the accumulated reports once the benchmarks finished: into the
/// file named by REACH_METRICS_JSON when set, to stderr otherwise.
inline void EmitBenchMetrics() {
  MetricsExporter& exporter = BenchExporter();
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  // Emit whenever there is anything to say: some binaries (bench_serve)
  // publish only registry instruments, never per-index reports.
  if (exporter.reports().empty() && snapshot.counters.empty() &&
      snapshot.gauges.empty() && snapshot.histograms.empty()) {
    return;
  }
  exporter.SetRegistrySnapshot(std::move(snapshot));
  if (const char* path = std::getenv("REACH_METRICS_JSON")) {
    if (exporter.WriteJsonFile(path)) {
      std::fprintf(stderr, "metrics: JSON report written to %s\n", path);
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n", path);
    }
    return;
  }
  std::fputs(exporter.ToJson().c_str(), stderr);
  std::fputc('\n', stderr);
}

/// The shared main body of every bench binary: google-benchmark
/// initialization, optional dynamic registration, the run, and the
/// post-run reports. When the REACH_BENCH_DIR environment variable names
/// a directory, the full benchmark results are additionally written there
/// as machine-readable JSON (`BENCH_<binary_name>.json` — google
/// benchmark's own JSON schema, consumed by CI artifacts and ad-hoc
/// tooling); an explicit --benchmark_out flag wins over the variable.
///
///   int main(int argc, char** argv) {
///     return reach::bench::BenchMain(argc, argv, "bench_table1_plain",
///                                    &reach::bench::RegisterAll);
///   }
inline int BenchMain(int argc, char** argv, const char* binary_name,
                     void (*register_benchmarks)() = nullptr,
                     void (*after_run)() = nullptr) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, format_flag;
  bool explicit_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      explicit_out = true;
    }
  }
  const char* dir = std::getenv("REACH_BENCH_DIR");
  if (dir != nullptr && !explicit_out) {
    out_flag = std::string("--benchmark_out=") + dir + "/BENCH_" +
               binary_name + ".json";
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  ::benchmark::Initialize(&args_count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  if (register_benchmarks != nullptr) register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  if (after_run != nullptr) after_run();
  EmitBenchMetrics();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace reach::bench

#endif  // REACH_BENCH_BENCH_COMMON_H_
