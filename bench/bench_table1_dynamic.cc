// Regenerates the Dynamic column of Table 1: edge-update maintenance
// through the batched write API. Compares TOL-style incremental insertion
// (PrunedTwoHop::ApplyUpdate) and DBL's monotone label propagation
// against the static-index alternative (full rebuild per batch), mixed
// insert/delete churn on the deletion-capable indexes, plus post-update
// query latency.
//
// Row naming: table1dyn/<graph>/<strategy>/<phase>.

#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "graph/rng.h"
#include "plain/dagger.h"
#include "plain/dbl.h"
#include "plain/pruned_two_hop.h"

namespace reach::bench {
namespace {

std::vector<Edge> InsertStream(VertexId n, size_t count, uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Edge> stream;
  while (stream.size() < count) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u != v) stream.push_back({u, v});
  }
  return stream;
}

void RegisterAll() {
  const VertexId n = 1024;
  auto* base = new Digraph(RandomDigraph(n, 3 * static_cast<size_t>(n),
                                         kSeed + 40));
  auto* stream = new std::vector<Edge>(InsertStream(n, 128, kSeed + 41));
  auto* queries =
      new std::vector<QueryPair>(RandomPairs(*base, 1000, kSeed + 42));

  // Incremental TOL (pruned 2-hop) insertions.
  ::benchmark::RegisterBenchmark(
      "table1dyn/er-avg3/tol-insert/apply_stream",
      [=](::benchmark::State& state) {
        for (auto _ : state) {
          PrunedTwoHop index(VertexOrder::kDegree);
          index.Build(*base);
          for (const Edge& e : *stream) {
            index.ApplyUpdate({EdgeUpdate::Insert(e.source, e.target)});
          }
          state.counters["label_entries"] =
              static_cast<double>(index.TotalLabelEntries());
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(stream->size()));
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMillisecond);

  // Static alternative: rebuild after every insertion batch of 16.
  ::benchmark::RegisterBenchmark(
      "table1dyn/er-avg3/rebuild-per-16/apply_stream",
      [=](::benchmark::State& state) {
        for (auto _ : state) {
          std::vector<Edge> edges = base->Edges();
          PrunedTwoHop index(VertexOrder::kDegree);
          index.Build(*base);
          Digraph current;
          for (size_t i = 0; i < stream->size(); i += 16) {
            for (size_t j = i; j < i + 16 && j < stream->size(); ++j) {
              edges.push_back((*stream)[j]);
            }
            current = Digraph::FromEdges(n, edges);
            index.Build(current);
          }
          state.counters["label_entries"] =
              static_cast<double>(index.TotalLabelEntries());
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(stream->size()));
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);

  // DBL insertions (the insert-only design of §3.2).
  ::benchmark::RegisterBenchmark(
      "table1dyn/er-avg3/dbl-insert/apply_stream",
      [=](::benchmark::State& state) {
        for (auto _ : state) {
          Dbl index;
          index.Build(*base);
          for (const Edge& e : *stream) {
            index.ApplyUpdate({EdgeUpdate::Insert(e.source, e.target)});
          }
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(stream->size()));
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMillisecond);

  // DAGGER-style dynamic GRAIL insertions (monotone bound widening).
  ::benchmark::RegisterBenchmark(
      "table1dyn/er-avg3/dagger-insert/apply_stream",
      [=](::benchmark::State& state) {
        for (auto _ : state) {
          Dagger index;
          index.Build(*base);
          for (const Edge& e : *stream) {
            index.ApplyUpdate({EdgeUpdate::Insert(e.source, e.target)});
          }
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(stream->size()));
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMillisecond);

  // Mixed insert/delete churn through the batched write API on the
  // deletion-capable indexes (the tentpole decremental path): 70/30
  // insert/delete mix, rebuilding only when the staleness budget
  // recommends it.
  auto* churn = new std::vector<EdgeUpdate>([&] {
    Xoshiro256ss rng(kSeed + 43);
    std::vector<Edge> live = base->Edges();
    std::vector<EdgeUpdate> updates;
    while (updates.size() < 128) {
      if (!live.empty() && rng.NextBounded(10) < 3) {
        const Edge e = live[rng.NextBounded(live.size())];
        updates.push_back(EdgeUpdate::Delete(e.source, e.target));
        std::erase(live, e);
      } else {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (u == v) continue;
        updates.push_back(EdgeUpdate::Insert(u, v));
        live.push_back({u, v});
      }
    }
    return updates;
  }());
  const auto register_churn = [&](const char* row, auto make_index) {
    ::benchmark::RegisterBenchmark(
        row,
        [=](::benchmark::State& state) {
          size_t rebuilds = 0;
          for (auto _ : state) {
            auto index = make_index();
            index.Build(*base);
            for (const EdgeUpdate& u : *churn) {
              if (index.ApplyUpdate({u}).rebuild_recommended) {
                index.RebuildFromUpdates();
                ++rebuilds;
              }
            }
          }
          state.counters["rebuilds"] = static_cast<double>(rebuilds);
          state.SetItemsProcessed(state.iterations() *
                                  static_cast<int64_t>(churn->size()));
        })
        ->Iterations(2)
        ->Unit(::benchmark::kMillisecond);
  };
  register_churn("table1dyn/er-avg3/tol-churn/apply_stream",
                 [] { return PrunedTwoHop(VertexOrder::kDegree); });
  register_churn("table1dyn/er-avg3/dagger-churn/apply_stream",
                 [] { return Dagger(); });

  // Post-update query latency for both dynamic indexes.
  auto* tol_after = new PrunedTwoHop(VertexOrder::kDegree);
  auto* dbl_after = new Dbl();
  tol_after->Build(*base);
  dbl_after->Build(*base);
  for (const Edge& e : *stream) {
    const UpdateBatch batch = {EdgeUpdate::Insert(e.source, e.target)};
    tol_after->ApplyUpdate(batch);
    dbl_after->ApplyUpdate(batch);
  }
  ::benchmark::RegisterBenchmark(
      "table1dyn/er-avg3/tol-insert/query_rand_after",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const QueryPair& q) {
          return tol_after->Query(q.source, q.target);
        });
      })
      ->Iterations(3)
      ->Unit(::benchmark::kMicrosecond);
  ::benchmark::RegisterBenchmark(
      "table1dyn/er-avg3/dbl-insert/query_rand_after",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const QueryPair& q) {
          return dbl_after->Query(q.source, q.target);
        });
      })
      ->Iterations(3)
      ->Unit(::benchmark::kMicrosecond);
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_table1_dynamic",
                                 &reach::bench::RegisterAll);
}
