// Ablation of the parameter k across the partial indexes (§3.1/§3.3
// design space): more interval traversals (GRAIL), bigger interval budgets
// (Ferrari), more permutation minima (IP), more Bloom bits (BFL), more
// supports (O'Reach), more landmarks (LCR landmark index) — index size vs
// filter precision (false-positive rate of the pure filter on unreachable
// pairs) vs end-to-end query latency.
//
// Row naming: ablation_k/<index>/<k>.

#include <memory>

#include "bench_common.h"
#include "core/scc_condensing_index.h"
#include "lcr/landmark_index.h"
#include "plain/bfl.h"
#include "plain/ferrari.h"
#include "plain/grail.h"
#include "plain/ip_label.h"
#include "plain/oreach.h"

namespace reach::bench {
namespace {

// Registers size + filter-fp-rate + query-latency rows for a DAG-only
// partial index. `filter` returns true when the pure filter CANNOT reject
// (i.e., a false positive on an unreachable pair).
template <typename Index>
void RegisterPartial(const std::string& base, const Digraph& graph,
                     const PlainWorkload& wl,
                     std::shared_ptr<Index> index) {
  ::benchmark::RegisterBenchmark(
      (base + "/filter").c_str(),
      [index, &wl, &graph](::benchmark::State& state) {
        size_t not_rejected = 0;
        for (auto _ : state) {
          not_rejected = 0;
          for (const QueryPair& q : wl.negative) {
            if constexpr (requires { index->MaybeReachable(0u, 0u); }) {
              not_rejected += index->MaybeReachable(q.source, q.target);
            } else {
              not_rejected += index->FilterVerdict(q.source, q.target) >= 0;
            }
          }
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(wl.negative.size()));
        state.counters["filter_fp_rate"] = ::benchmark::Counter(
            static_cast<double>(not_rejected) / wl.negative.size());
        state.counters["index_KB"] = ::benchmark::Counter(
            static_cast<double>(index->IndexSizeBytes()) / 1024.0);
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);

  ::benchmark::RegisterBenchmark(
      (base + "/query_rand").c_str(),
      [index, &wl](::benchmark::State& state) {
        RunQueryLoop(state, wl.random, [&](const QueryPair& q) {
          return index->Query(q.source, q.target);
        });
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);
}

void RegisterAll() {
  const VertexId n = 2048;
  auto* dag = new Digraph(
      RandomDag(n, 4 * static_cast<size_t>(n), kSeed + 110));
  auto* wl = new PlainWorkload(MakePlainWorkload(*dag, 800));

  for (size_t k : {1, 2, 3, 5, 8}) {
    auto index = std::make_shared<Grail>(k);
    index->Build(*dag);
    RegisterPartial("ablation_k/grail/k=" + std::to_string(k), *dag, *wl,
                    index);
  }
  for (size_t k : {1, 2, 4, 8, 16}) {
    auto index = std::make_shared<Ferrari>(k);
    index->Build(*dag);
    RegisterPartial("ablation_k/ferrari/k=" + std::to_string(k), *dag, *wl,
                    index);
  }
  for (size_t k : {1, 2, 4, 8}) {
    auto index = std::make_shared<IpLabel>(k);
    index->Build(*dag);
    RegisterPartial("ablation_k/ip/k=" + std::to_string(k), *dag, *wl,
                    index);
  }
  for (size_t bits : {64, 128, 256, 512}) {
    auto index = std::make_shared<Bfl>(bits);
    index->Build(*dag);
    RegisterPartial("ablation_k/bfl/bits=" + std::to_string(bits), *dag, *wl,
                    index);
  }
  for (size_t k : {8, 16, 32, 64}) {
    auto index = std::make_shared<OReach>(k);
    index->Build(*dag);
    RegisterPartial("ablation_k/oreach/k=" + std::to_string(k), *dag, *wl,
                    index);
  }

  // Landmark count for the LCR landmark index (Table 2 ablation).
  auto* lgraph = new LabeledDigraph(RandomLabeledDigraph(
      1024, 4 * 1024, 4, kSeed + 111));
  auto* lcr_queries = new std::vector<LcrQuery>(
      RandomLcrQueries(*lgraph, 500, 2, kSeed + 112));
  for (size_t k : {4, 8, 16, 32}) {
    auto index = std::make_shared<LandmarkIndex>(k);
    index->Build(*lgraph);
    ::benchmark::RegisterBenchmark(
        ("ablation_k/landmark/k=" + std::to_string(k) + "/query_rand")
            .c_str(),
        [index, lcr_queries](::benchmark::State& state) {
          RunQueryLoop(state, *lcr_queries, [&](const LcrQuery& q) {
            return index->Query(q.source, q.target, q.allowed);
          });
          state.counters["index_KB"] = ::benchmark::Counter(
              static_cast<double>(index->IndexSizeBytes()) / 1024.0);
        })
        ->Iterations(2)
        ->Unit(::benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_ablation_k",
                                 &reach::bench::RegisterAll);
}
