// Ablation of the §3.2 design choice TOL makes explicit: the total order
// drives 2-hop label size and query speed. Degree order (DL/PLL) versus
// topological (TFL), random, and reverse-degree, on a hub-heavy scale-free
// DAG and a uniform random digraph.
//
// Row naming: order/<graph>/<order>/<phase>.

#include <memory>

#include "bench_common.h"
#include "plain/pruned_two_hop.h"

namespace reach::bench {
namespace {

void RegisterAll() {
  const VertexId n = 2048;
  auto* graphs = new std::vector<GraphCase>();
  graphs->push_back({"scalefree-d3", ScaleFreeDag(n, 3, kSeed + 100)});
  graphs->push_back(
      {"er-cyclic-avg4",
       RandomDigraph(n, 4 * static_cast<size_t>(n), kSeed + 101)});

  const struct {
    const char* name;
    VertexOrder order;
  } orders[] = {{"degree(pll)", VertexOrder::kDegree},
                {"topological(tfl)", VertexOrder::kTopological},
                {"random", VertexOrder::kRandom},
                {"reverse-degree", VertexOrder::kReverseDegree}};

  for (const GraphCase& gc : *graphs) {
    auto* queries =
        new std::vector<QueryPair>(RandomPairs(gc.graph, 1000, kSeed + 102));
    for (const auto& order : orders) {
      const std::string base =
          std::string("order/") + gc.name + "/" + order.name;
      ::benchmark::RegisterBenchmark(
          (base + "/build").c_str(),
          [&gc, o = order.order](::benchmark::State& state) {
            size_t entries = 0;
            for (auto _ : state) {
              PrunedTwoHop index(o);
              index.Build(gc.graph);
              entries = index.TotalLabelEntries();
            }
            state.counters["label_entries"] = static_cast<double>(entries);
            state.counters["entries_per_vertex"] = ::benchmark::Counter(
                static_cast<double>(entries) / gc.graph.NumVertices());
          })
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);

      auto built = std::make_shared<PrunedTwoHop>(order.order);
      built->Build(gc.graph);
      ::benchmark::RegisterBenchmark(
          (base + "/query_rand").c_str(),
          [built, queries](::benchmark::State& state) {
            RunQueryLoop(state, *queries, [&](const QueryPair& q) {
              return built->Query(q.source, q.target);
            });
          })
          ->Iterations(3)
          ->Unit(::benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_ablation_order",
                                 &reach::bench::RegisterAll);
}
