// Regenerates the Dynamic column of Table 2 (the DLCR row): incremental
// labeled-edge updates (inserts and a mixed insert/delete churn) on the
// pruned labeled 2-hop index versus full rebuilds, plus post-update
// query latency.
//
// Row naming: table2dyn/<graph>/<strategy>/<phase>.

#include <memory>

#include "bench_common.h"
#include "graph/rng.h"
#include "lcr/pruned_labeled_two_hop.h"

namespace reach::bench {
namespace {

void RegisterAll() {
  const VertexId n = 512;
  const Label num_labels = 4;
  auto* base = new LabeledDigraph(RandomLabeledDigraph(
      n, 3 * static_cast<size_t>(n), num_labels, kSeed + 70));
  auto* stream = new std::vector<LabeledEdge>();
  {
    Xoshiro256ss rng(kSeed + 71);
    while (stream->size() < 64) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u != v) {
        stream->push_back(
            {u, v, static_cast<Label>(rng.NextBounded(num_labels))});
      }
    }
  }
  auto* queries = new std::vector<LcrQuery>(
      RandomLcrQueries(*base, 500, 2, kSeed + 72));

  ::benchmark::RegisterBenchmark(
      "table2dyn/er-L4/dlcr-insert/apply_stream",
      [=](::benchmark::State& state) {
        for (auto _ : state) {
          PrunedLabeledTwoHop index;
          index.Build(*base);
          for (const LabeledEdge& e : *stream) {
            index.ApplyUpdate(
                {LabeledEdgeUpdate::Insert(e.source, e.target, e.label)});
          }
          state.counters["entries"] =
              static_cast<double>(index.TotalEntries());
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(stream->size()));
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMillisecond);

  ::benchmark::RegisterBenchmark(
      "table2dyn/er-L4/rebuild-per-16/apply_stream",
      [=](::benchmark::State& state) {
        for (auto _ : state) {
          std::vector<LabeledEdge> edges = base->Edges();
          PrunedLabeledTwoHop index;
          index.Build(*base);
          LabeledDigraph current;
          for (size_t i = 0; i < stream->size(); i += 16) {
            for (size_t j = i; j < i + 16 && j < stream->size(); ++j) {
              edges.push_back((*stream)[j]);
            }
            current = LabeledDigraph::FromEdges(n, num_labels, edges);
            index.Build(current);
          }
          state.counters["entries"] =
              static_cast<double>(index.TotalEntries());
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(stream->size()));
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);

  // Mixed labeled churn (70/30 insert/delete) through the batched API,
  // rebuilding only on the staleness budget's recommendation.
  ::benchmark::RegisterBenchmark(
      "table2dyn/er-L4/dlcr-churn/apply_stream",
      [=](::benchmark::State& state) {
        size_t rebuilds = 0;
        for (auto _ : state) {
          Xoshiro256ss rng(kSeed + 73);
          std::vector<LabeledEdge> live = base->Edges();
          PrunedLabeledTwoHop index;
          index.Build(*base);
          for (size_t step = 0; step < 64; ++step) {
            LabeledUpdateBatch batch;
            if (!live.empty() && rng.NextBounded(10) < 3) {
              const LabeledEdge e = live[rng.NextBounded(live.size())];
              batch.push_back(
                  LabeledEdgeUpdate::Delete(e.source, e.target, e.label));
              std::erase(live, e);
            } else {
              const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
              const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
              if (u == v) continue;
              const auto l = static_cast<Label>(rng.NextBounded(num_labels));
              batch.push_back(LabeledEdgeUpdate::Insert(u, v, l));
              live.push_back({u, v, l});
            }
            if (index.ApplyUpdate(batch).rebuild_recommended) {
              index.RebuildFromUpdates();
              ++rebuilds;
            }
          }
        }
        state.counters["rebuilds"] = static_cast<double>(rebuilds);
        state.SetItemsProcessed(state.iterations() * 64);
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMillisecond);

  auto* after = new PrunedLabeledTwoHop();
  after->Build(*base);
  for (const LabeledEdge& e : *stream) {
    after->ApplyUpdate(
        {LabeledEdgeUpdate::Insert(e.source, e.target, e.label)});
  }
  ::benchmark::RegisterBenchmark(
      "table2dyn/er-L4/dlcr-insert/query_rand_after",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const LcrQuery& q) {
          return after->Query(q.source, q.target, q.allowed);
        });
      })
      ->Iterations(3)
      ->Unit(::benchmark::kMicrosecond);
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_table2_dynamic",
                                 &reach::bench::RegisterAll);
}
