// Microbenchmark for the query hot-path intersection kernels
// (src/core/label_kernels.h, docs/QUERY_ENGINE.md): scalar two-pointer
// reference vs branchless merge, portable word-parallel blocks, the
// runtime-dispatched SIMD block kernel, galloping, and the full engine
// dispatch — swept over the label-size ratios the 2-hop indexes actually
// produce (similar sizes and 8x / 64x skew).
//
// Row naming: kernels/<ratio>/<kernel>. Besides the benchmark rows, a
// chrono-measured speedup summary lands in the reach.metrics.v1 report
// (REACH_METRICS_JSON) as reports "kernels/<ratio>/<kernel>" plus gauges
// "kernels.speedup.<ratio>.<kernel>" (scalar-relative).

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/label_kernels.h"
#include "graph/rng.h"

namespace reach::bench {
namespace {

using Set = std::vector<uint32_t>;
using KernelFn = bool (*)(const uint32_t*, size_t, const uint32_t*, size_t);

struct Pair {
  Set small;  // |small| * ratio == |large|
  Set large;
};

struct Workload {
  std::string name;   // "1:1", "1:8", "1:64"
  size_t ratio;
  std::vector<Pair> pairs;
};

Set RandomSortedSet(Xoshiro256ss& rng, size_t size, uint32_t universe) {
  Set values;
  values.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    values.push_back(static_cast<uint32_t>(rng.NextBounded(universe)));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

// 256 pairs per ratio; half get one planted common element so both the
// hit and miss exits stay exercised (a miss scans everything, a hit exits
// early — real query mixes contain both).
Workload MakeWorkload(const std::string& name, size_t ratio) {
  constexpr size_t kLargeSize = 4096;
  constexpr uint32_t kUniverse = 1u << 22;  // sparse: misses dominate raw
  Workload w{name, ratio, {}};
  Xoshiro256ss rng(kSeed + ratio);
  for (size_t p = 0; p < 256; ++p) {
    Pair pair;
    pair.small = RandomSortedSet(rng, kLargeSize / ratio, kUniverse);
    pair.large = RandomSortedSet(rng, kLargeSize, kUniverse);
    if (p % 2 == 0 && !pair.small.empty()) {
      const uint32_t planted = static_cast<uint32_t>(
          pair.small[rng.NextBounded(pair.small.size())]);
      pair.large.insert(
          std::lower_bound(pair.large.begin(), pair.large.end(), planted),
          planted);
      pair.large.erase(std::unique(pair.large.begin(), pair.large.end()),
                       pair.large.end());
    }
    w.pairs.push_back(std::move(pair));
  }
  return w;
}

bool GallopSmallFirst(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb) {
  return na <= nb ? IntersectSortedGalloping(a, na, b, nb)
                  : IntersectSortedGalloping(b, nb, a, na);
}

struct Kernel {
  const char* name;
  KernelFn fn;
};

std::vector<Kernel> Kernels() {
  return {
      {"scalar", &IntersectSortedScalar},
      {"branchless", &IntersectSortedBranchless},
      {"word64", &IntersectSortedWord},
      {"blocks", &IntersectSortedBlocks},  // runtime: avx2/sse2/word64
      {"gallop", &GallopSmallFirst},
      {"engine", &IntersectSorted},
  };
}

size_t RunAllPairs(const Workload& w, KernelFn fn) {
  size_t hits = 0;
  for (const Pair& p : w.pairs) {
    hits += fn(p.small.data(), p.small.size(), p.large.data(),
               p.large.size())
                ? 1
                : 0;
  }
  return hits;
}

void RegisterAll() {
  auto* workloads = new std::vector<Workload>();
  workloads->push_back(MakeWorkload("1:1", 1));
  workloads->push_back(MakeWorkload("1:8", 8));
  workloads->push_back(MakeWorkload("1:64", 64));

  for (const Workload& w : *workloads) {
    for (const Kernel& k : Kernels()) {
      ::benchmark::RegisterBenchmark(
          ("kernels/" + w.name + "/" + k.name).c_str(),
          [&w, fn = k.fn](::benchmark::State& state) {
            size_t hits = 0;
            for (auto _ : state) hits = RunAllPairs(w, fn);
            ::benchmark::DoNotOptimize(hits);
            state.SetItemsProcessed(state.iterations() *
                                    static_cast<int64_t>(w.pairs.size()));
            state.counters["hit_frac"] = ::benchmark::Counter(
                static_cast<double>(hits) / w.pairs.size());
            ReportThreads(state, 1);
          })
          ->Unit(::benchmark::kMicrosecond);
    }
  }
}

// Chrono-measured speedup summary for the metrics report: ns/query per
// kernel and ratio, plus the scalar-relative speedup as a gauge. This is
// deliberately independent of google-benchmark's own timing so the
// reach.metrics.v1 JSON is self-contained.
void EmitSpeedupReport(const std::vector<Workload>& workloads) {
  constexpr int kRounds = 40;
  for (const Workload& w : workloads) {
    double scalar_ns = 0;
    for (const Kernel& k : Kernels()) {
      size_t hits = 0;
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < kRounds; ++r) hits += RunAllPairs(w, k.fn);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      ::benchmark::DoNotOptimize(hits);
      const uint64_t total_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
      const size_t queries = kRounds * w.pairs.size();
      const double ns_per_query =
          static_cast<double>(total_ns) / static_cast<double>(queries);
      if (std::string(k.name) == "scalar") scalar_ns = ns_per_query;

      IndexReport report;
      report.name = "kernels/" + w.name + "/" + k.name;
      report.complete = true;
      report.build_ns = total_ns;
      report.num_entries = queries;
      report.probe.queries = queries;
      BenchExporter().Add(std::move(report));

      MetricsRegistry::Global()
          .GetGauge("kernels.ns_per_query." + w.name + "." + k.name)
          .Set(ns_per_query);
      if (scalar_ns > 0) {
        MetricsRegistry::Global()
            .GetGauge("kernels.speedup." + w.name + "." + k.name)
            .Set(scalar_ns / ns_per_query);
      }
    }
  }
  std::fprintf(stderr, "kernels: active block kernel = %s\n",
               ActiveIntersectKernelName());
}

}  // namespace
}  // namespace reach::bench

namespace reach::bench {
namespace {

void EmitKernelReports() {
  std::vector<Workload> workloads;
  workloads.push_back(MakeWorkload("1:1", 1));
  workloads.push_back(MakeWorkload("1:8", 8));
  workloads.push_back(MakeWorkload("1:64", 64));
  EmitSpeedupReport(workloads);
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_query_kernels",
                                 &reach::bench::RegisterAll,
                                 &reach::bench::EmitKernelReports);
}
