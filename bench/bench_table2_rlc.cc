// Regenerates the concatenation row of Table 2 (the RLC index [52]):
// indexed Kleene-sequence lookups versus the online product-automaton BFS,
// for sequence lengths 1..3, plus build cost per template.
//
// Row naming: table2rlc/<graph>/<engine>/<sequence>.

#include <memory>

#include "bench_common.h"
#include "graph/rng.h"
#include "rlc/rlc_index.h"
#include "rlc/rlc_product_bfs.h"

namespace reach::bench {
namespace {

std::vector<QueryPair> Pairs(VertexId n, size_t count, uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<QueryPair> pairs;
  for (size_t i = 0; i < count; ++i) {
    pairs.push_back({static_cast<VertexId>(rng.NextBounded(n)),
                     static_cast<VertexId>(rng.NextBounded(n))});
  }
  return pairs;
}

std::string SeqName(const KleeneSequence& seq) {
  std::string out = "seq";
  for (Label l : seq) out += std::to_string(l);
  return out;
}

void RegisterAll() {
  const VertexId n = 1024;
  auto* graph = new LabeledDigraph(
      RandomLabeledDigraph(n, 4 * static_cast<size_t>(n), 4, kSeed + 60));
  auto* templates = new std::vector<KleeneSequence>{
      {0}, {0, 1}, {2, 3}, {0, 1, 2}};
  auto* queries = new std::vector<QueryPair>(Pairs(n, 500, kSeed + 61));

  ::benchmark::RegisterBenchmark(
      "table2rlc/er-L4/rlc-index/build_all_templates",
      [=](::benchmark::State& state) {
        size_t bytes = 0;
        for (auto _ : state) {
          RlcIndex index;
          index.Build(*graph, *templates);
          bytes = index.IndexSizeBytes();
        }
        state.counters["index_KB"] = static_cast<double>(bytes) / 1024.0;
        state.counters["templates"] =
            static_cast<double>(templates->size());
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);

  auto* built = new RlcIndex();
  built->Build(*graph, *templates);
  for (const KleeneSequence& seq : *templates) {
    ::benchmark::RegisterBenchmark(
        ("table2rlc/er-L4/rlc-index/" + SeqName(seq)).c_str(),
        [=](::benchmark::State& state) {
          RunQueryLoop(state, *queries, [&](const QueryPair& q) {
            return built->Query(q.source, q.target, seq);
          });
        })
        ->Iterations(2)
        ->Unit(::benchmark::kMicrosecond);
    ::benchmark::RegisterBenchmark(
        ("table2rlc/er-L4/product-bfs/" + SeqName(seq)).c_str(),
        [=](::benchmark::State& state) {
          SearchWorkspace ws;
          RunQueryLoop(state, *queries, [&](const QueryPair& q) {
            return RlcProductBfsReachability(*graph, q.source, q.target, seq,
                                             ws);
          });
        })
        ->Iterations(2)
        ->Unit(::benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_table2_rlc",
                                 &reach::bench::RegisterAll);
}
