// Regenerates the alternation rows of Table 2 as an empirical matrix:
// GTC (Zou et al.), landmark (Valstar et al.), labeled 2-hop (P2H+), and
// the constrained-BFS baseline — build time, index size, and query latency
// on positive / random LCR workloads with narrow and wide label masks.
//
// Row naming: table2/<graph>/<index>/<phase>.

#include <memory>

#include "bench_common.h"
#include "core/index_factory.h"

namespace reach::bench {
namespace {

struct BuiltLcr {
  std::unique_ptr<LcrIndex> index;
};

void RegisterAll() {
  const VertexId n = 1024;
  auto* graphs = new std::vector<LabeledGraphCase>(LcrBenchGraphs(n));

  for (const LabeledGraphCase& gc : *graphs) {
    const Label narrow = 2;
    const Label wide = gc.graph.NumLabels() - 1;
    auto* pos = new std::vector<LcrQuery>(
        ReachableLcrQueries(gc.graph, 500, narrow, kSeed + 50));
    auto* rand_narrow = new std::vector<LcrQuery>(
        RandomLcrQueries(gc.graph, 500, narrow, kSeed + 51));
    auto* rand_wide = new std::vector<LcrQuery>(
        RandomLcrQueries(gc.graph, 500, wide, kSeed + 52));

    for (const std::string& spec : DefaultIndexSpecs(IndexFamily::kLcr)) {
      // The full GTC materialization is quadratic in pairs and blows up
      // with the label count; keep it to the 4-label graph (its cost story
      // is exactly the survey's point about complete GTC indexes).
      if ((spec == "lcr:gtc" || spec == "lcr:tree") &&
          gc.graph.NumLabels() > 4) {
        continue;
      }
      const std::string base = "table2/" + gc.name + "/" + spec;
      // Reported build time is the index-measured IndexStats::build_time
      // (manual time) — one stopwatch for bench tables and metrics alike.
      ::benchmark::RegisterBenchmark(
          (base + "/build").c_str(),
          [&gc, spec](::benchmark::State& state) {
            size_t bytes = 0;
            IndexStats stats;
            for (auto _ : state) {
              auto index = MakeIndex(spec).lcr;
              index->Build(gc.graph);
              bytes = index->IndexSizeBytes();
              stats = index->Stats();
              state.SetIterationTime(
                  static_cast<double>(stats.build_time.count()) / 1e9);
            }
            ReportBuildCounters(state, stats);
            state.counters["index_KB"] =
                static_cast<double>(bytes) / 1024.0;
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(::benchmark::kMillisecond);

      auto built = std::make_shared<BuiltLcr>();
      auto ensure_built = [built, &gc, spec]() {
        if (built->index == nullptr) {
          built->index = MakeIndex(spec).lcr;
          built->index->Build(gc.graph);
        }
      };
      const struct {
        const char* name;
        const std::vector<LcrQuery>* queries;
        bool collect_report;  // last phase folds the index into the JSON
      } phases[] = {{"query_pos", pos, false},
                    {"query_rand_narrow", rand_narrow, false},
                    {"query_rand_wide", rand_wide, true}};
      for (const auto& phase : phases) {
        ::benchmark::RegisterBenchmark(
            (base + "/" + phase.name).c_str(),
            [ensure_built, built, &gc, queries = phase.queries,
             collect = phase.collect_report](::benchmark::State& state) {
              ensure_built();
              const QueryProbe before = built->index->Probe();
              RunQueryLoop(state, *queries, [&](const LcrQuery& q) {
                return built->index->Query(q.source, q.target, q.allowed);
              });
              ReportProbeDelta(state, before, built->index->Probe());
              if (collect) CollectIndexReport(gc.name, *built->index);
            })
            ->Iterations(2)
            ->Unit(::benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_table2_lcr",
                                 &reach::bench::RegisterAll);
}
