// Serving-engine latency and throughput (src/serve/): query percentiles
// under a concurrent insert stream, the scenario the §5 "integration into
// GDBMSs" challenge describes. The p50/p99 counters are the headline —
// mean latency hides the snapshot-swap and delta-closure tail.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "graph/rng.h"
#include "serve/reach_service.h"

namespace reach::bench {
namespace {

double Percentile(std::vector<double>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted_ns.size() - 1));
  return sorted_ns[idx];
}

// One reader measuring per-query latency while `writers` background
// threads stream inserts. The drain threshold keeps several snapshot
// rebuilds in flight over the run, so the measured distribution includes
// queries served mid-swap (delta closure and fallback paths).
void BM_ServeQueryLatencyUnderWrites(benchmark::State& state) {
  const auto writers = static_cast<size_t>(state.range(0));
  const VertexId n = 1 << 14;
  const Digraph graph = ScaleFreeDag(n, 3, kSeed);

  ServiceOptions options;
  options.spec = "pll";
  options.drain_threshold = 128;
  // A deadline plus a latency threshold exercises both slow-query capture
  // paths; the 500µs threshold only trips on genuine tail queries.
  options.deadline = std::chrono::milliseconds(2);
  options.slow_query_threshold = std::chrono::microseconds(500);
  ReachService service(graph, options);
  service.Start();
  service.Flush();  // measure from the first indexed snapshot

  std::atomic<bool> stop{false};
  std::vector<std::thread> writer_threads;
  for (size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      Xoshiro256ss rng(kSeed + 100 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        service.InsertEdge(static_cast<VertexId>(rng.NextBounded(n)),
                           static_cast<VertexId>(rng.NextBounded(n)));
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  Xoshiro256ss rng(kSeed + 7);
  std::vector<double> latencies_ns;
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.NextBounded(n));
    const auto t = static_cast<VertexId>(rng.NextBounded(n));
    const auto begin = std::chrono::steady_clock::now();
    ServeAnswer answer = service.Query(s, t);
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(answer);
    latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writer_threads) th.join();
  service.Stop();

  std::sort(latencies_ns.begin(), latencies_ns.end());
  state.counters["p50_ns"] = Percentile(latencies_ns, 0.50);
  state.counters["p99_ns"] = Percentile(latencies_ns, 0.99);
  const ServeStats& stats = service.stats();
  state.counters["snapshots"] = static_cast<double>(stats.rebuilds.load());
  state.counters["delta_answers"] =
      static_cast<double>(stats.delta_answers.load());
  state.counters["fallback_answers"] =
      static_cast<double>(stats.fallback_answers.load());
  // The serve tail, printed alongside p50/p99: queries that blew their
  // deadline (degraded to the bounded BFS), answers the service could not
  // verify, and slow-query-log activity ("serve.slow.*" in metrics).
  state.counters["deadline_degraded"] =
      static_cast<double>(stats.deadline_degraded.load());
  state.counters["inexact_answers"] =
      static_cast<double>(stats.inexact_answers.load());
  state.counters["slow_captured"] =
      static_cast<double>(stats.slow_captured.load());
  state.counters["slow_dropped"] =
      static_cast<double>(stats.slow_dropped.load());
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ServeQueryLatencyUnderWrites)
    ->Arg(0)  // read-only baseline: every answer is an index hit
    ->Arg(1)
    ->Arg(4)
    ->Iterations(20000)
    ->Unit(benchmark::kMicrosecond);

// Aggregate read throughput: `threads` benchmark reader threads share one
// service while a single background writer streams inserts.
ReachService* g_service = nullptr;
std::atomic<bool>* g_stop = nullptr;
std::thread* g_writer = nullptr;

void BM_ServeReadThroughput(benchmark::State& state) {
  constexpr VertexId kN = 1 << 14;
  if (state.thread_index() == 0) {
    ServiceOptions options;
    options.spec = "pll";
    options.slots = static_cast<size_t>(state.threads());
    options.drain_threshold = 128;
    g_service = new ReachService(ScaleFreeDag(kN, 3, kSeed), options);
    g_service->Start();
    g_service->Flush();
    g_stop = new std::atomic<bool>{false};
    g_writer = new std::thread([stop = g_stop, service = g_service] {
      Xoshiro256ss rng(kSeed + 99);
      while (!stop->load(std::memory_order_relaxed)) {
        service->InsertEdge(static_cast<VertexId>(rng.NextBounded(kN)),
                            static_cast<VertexId>(rng.NextBounded(kN)));
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  Xoshiro256ss rng(kSeed + 13 * (state.thread_index() + 1));
  for (auto _ : state) {
    ServeAnswer answer =
        g_service->Query(static_cast<VertexId>(rng.NextBounded(kN)),
                         static_cast<VertexId>(rng.NextBounded(kN)));
    benchmark::DoNotOptimize(answer);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    g_stop->store(true, std::memory_order_relaxed);
    g_writer->join();
    g_service->Stop();
    state.counters["snapshots"] =
        static_cast<double>(g_service->stats().rebuilds.load());
    delete g_writer;
    delete g_stop;
    delete g_service;
    g_writer = nullptr;
    g_stop = nullptr;
    g_service = nullptr;
  }
}

BENCHMARK(BM_ServeReadThroughput)
    ->ThreadRange(1, 8)
    ->Iterations(20000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_serve");
}
