// Serving-engine latency and throughput (src/serve/): query percentiles
// under concurrent insert and mixed insert/delete churn streams, the
// scenario the §5 "integration into GDBMSs" challenge describes. The
// p50/p99 counters are the headline — mean latency hides the
// snapshot-swap and delta-closure tail.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "graph/rng.h"
#include "obs/metrics_registry.h"
#include "plain/pruned_two_hop.h"
#include "serve/reach_service.h"

namespace reach::bench {
namespace {

double Percentile(std::vector<double>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted_ns.size() - 1));
  return sorted_ns[idx];
}

// Query-mix knob: the answer-class bias of the measured workload. The
// biased mixes are 90/10 — the unreachable-biased one is the regime the
// fast-path layer and the negative-result cache target (paper §5: sparse
// real workloads are negative-dominated).
enum QueryMix : int64_t { kUniform = 0, kUnreachableBiased = 1, kReachableBiased = 2 };

const char* MixName(int64_t mix) {
  switch (mix) {
    case kUnreachableBiased: return "neg90";
    case kReachableBiased: return "pos90";
    default: return "uniform";
  }
}

std::vector<QueryPair> MixedPairs(const Digraph& g, int64_t mix,
                                  size_t count) {
  if (mix == kUniform) return RandomPairs(g, count, kSeed + 7);
  return BiasedPairs(g, mix == kUnreachableBiased, count, kSeed + 8);
}

// One reader measuring per-query latency while `writers` background
// threads stream inserts. The drain threshold keeps several snapshot
// rebuilds in flight over the run, so the measured distribution includes
// queries served mid-swap (delta closure and fallback paths). Args:
// {writers, mix (0 uniform / 1 neg90 / 2 pos90), fastpath on/off}.
void BM_ServeQueryLatencyUnderWrites(benchmark::State& state) {
  const auto writers = static_cast<size_t>(state.range(0));
  const int64_t mix = state.range(1);
  const bool fastpath = state.range(2) != 0;
  const VertexId n = 1 << 14;
  const Digraph graph = ScaleFreeDag(n, 3, kSeed);

  ServiceOptions options;
  options.spec = fastpath ? "pll:fastpath=1" : "pll";
  options.drain_threshold = 128;
  // A deadline plus a latency threshold exercises both slow-query capture
  // paths; the 500µs threshold only trips on genuine tail queries.
  options.deadline = std::chrono::milliseconds(2);
  options.slow_query_threshold = std::chrono::microseconds(500);
  ReachService service(graph, options);
  service.Start();
  service.Flush();  // measure from the first indexed snapshot

  std::atomic<bool> stop{false};
  std::vector<std::thread> writer_threads;
  for (size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      Xoshiro256ss rng(kSeed + 100 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        service.ApplyUpdate(
            {EdgeUpdate::Insert(static_cast<VertexId>(rng.NextBounded(n)),
                                static_cast<VertexId>(rng.NextBounded(n)))});
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  // Small enough that the run revisits each pair several times — repeated
  // queries are what the negative-result cache converts into O(1) hits.
  const std::vector<QueryPair> pool = MixedPairs(graph, mix, 1 << 12);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t fp_pos0 = registry.GetCounter("fastpath.hit.pos").Value();
  const uint64_t fp_neg0 = registry.GetCounter("fastpath.hit.neg").Value();
  const uint64_t fp_und0 = registry.GetCounter("fastpath.undecided").Value();

  size_t cursor = 0;
  std::vector<double> latencies_ns;
  for (auto _ : state) {
    const QueryPair q = pool[cursor++ % pool.size()];
    const auto begin = std::chrono::steady_clock::now();
    ServeAnswer answer = service.Query(q.source, q.target);
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(answer);
    latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writer_threads) th.join();
  service.Stop();

  std::sort(latencies_ns.begin(), latencies_ns.end());
  const double p50 = Percentile(latencies_ns, 0.50);
  const double p99 = Percentile(latencies_ns, 0.99);
  state.counters["p50_ns"] = p50;
  state.counters["p99_ns"] = p99;
  const ServeStats& stats = service.stats();
  const double queries =
      std::max<double>(1.0, static_cast<double>(stats.queries.load()));
  // Fast-path hit rate is hits / total verdicts from the registry deltas
  // (the denominator includes internal probes the service makes during
  // delta closure, not just top-level queries; counts flush in batches of
  // 64 per slot, so this is a slight undercount). Negcache hits come from
  // the service stats, per top-level query.
  const double fp_hits = static_cast<double>(
      (registry.GetCounter("fastpath.hit.pos").Value() - fp_pos0) +
      (registry.GetCounter("fastpath.hit.neg").Value() - fp_neg0));
  const double fp_total =
      fp_hits + static_cast<double>(
                    registry.GetCounter("fastpath.undecided").Value() -
                    fp_und0);
  const double negcache_rate =
      static_cast<double>(stats.negcache_hits.load()) / queries;
  state.counters["fastpath_hit_rate"] =
      fp_hits / std::max(1.0, fp_total);
  state.counters["negcache_hit_rate"] = negcache_rate;
  // Mirror the headline numbers into the registry so the run's
  // "reach.metrics.v1" report carries the per-mix comparison.
  const std::string prefix = std::string("bench.serve.") + MixName(mix) +
                             (fastpath ? ".fastpath" : ".base");
  registry.GetGauge(prefix + ".p50_ns").Set(p50);
  registry.GetGauge(prefix + ".p99_ns").Set(p99);
  registry.GetGauge(prefix + ".fastpath_hit_rate")
      .Set(fp_hits / std::max(1.0, fp_total));
  registry.GetGauge(prefix + ".negcache_hit_rate").Set(negcache_rate);
  state.counters["snapshots"] = static_cast<double>(stats.rebuilds.load());
  state.counters["delta_answers"] =
      static_cast<double>(stats.delta_answers.load());
  state.counters["fallback_answers"] =
      static_cast<double>(stats.fallback_answers.load());
  // The serve tail, printed alongside p50/p99: queries that blew their
  // deadline (degraded to the bounded BFS), answers the service could not
  // verify, and slow-query-log activity ("serve.slow.*" in metrics).
  state.counters["deadline_degraded"] =
      static_cast<double>(stats.deadline_degraded.load());
  state.counters["inexact_answers"] =
      static_cast<double>(stats.inexact_answers.load());
  state.counters["slow_captured"] =
      static_cast<double>(stats.slow_captured.load());
  state.counters["slow_dropped"] =
      static_cast<double>(stats.slow_dropped.load());
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ServeQueryLatencyUnderWrites)
    // {writers, mix, fastpath}: writer sweep on the uniform mix...
    ->Args({0, kUniform, 0})  // read-only baseline: index hits only
    ->Args({1, kUniform, 0})
    ->Args({4, kUniform, 0})
    // ...then the fastpath on/off comparison per answer-class mix, with
    // no writer so the percentiles isolate the query path (the neg90 pair
    // is the headline: unreachable-biased p50/p99, fastpath on vs off).
    ->Args({0, kUnreachableBiased, 0})
    ->Args({0, kUnreachableBiased, 1})
    ->Args({0, kReachableBiased, 0})
    ->Args({0, kReachableBiased, 1})
    ->Args({0, kUniform, 1})
    // ...and the unreachable-biased mix under write pressure, where every
    // insert invalidates the negcache but order filters keep deciding.
    ->Args({1, kUnreachableBiased, 0})
    ->Args({1, kUnreachableBiased, 1})
    ->Iterations(20000)
    ->Unit(benchmark::kMicrosecond);

// Churn mixes (the decremental serve path): one reader measures per-query
// latency while `writers` background threads stream mixed insert/delete
// batches through `ApplyUpdate`. Args: {writers, delete_pct} — 30 is the
// steady churn mix, 70 the delete-heavy one. The acceptance counters:
// p99 stays bounded while deletes flow, and `rebuilds` tracks the drain
// threshold, never the per-delete count (no whole-index rebuild per
// delete anywhere on the serve path). Headlines land in the
// bench.serve.churn.* gauges.
void BM_ServeChurnMix(benchmark::State& state) {
  const auto writers = static_cast<size_t>(state.range(0));
  const auto delete_pct = static_cast<uint64_t>(state.range(1));
  const VertexId n = 1 << 14;
  const Digraph graph = ScaleFreeDag(n, 3, kSeed);

  ServiceOptions options;
  options.spec = "pll";
  options.drain_threshold = 128;
  options.deadline = std::chrono::milliseconds(2);
  // Rebuilds at this scale are slower than the writers, so bound the
  // pending buffer (default kBlock backpressure parks the writers until
  // a drain catches up) — otherwise the delta closure every query scans
  // grows without limit and read latency measures queue depth, not the
  // serve path.
  options.max_pending_edges = 1024;
  ReachService service(graph, options);
  service.Start();
  service.Flush();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writer_threads;
  for (size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      Xoshiro256ss rng(kSeed + 200 + w);
      // Each writer deletes from its own slice of the base edge set, so
      // delete targets mostly exist (re-deletes are ignored, not errors).
      std::vector<Edge> live;
      const std::vector<Edge> all = graph.Edges();
      for (size_t i = w; i < all.size(); i += writers) {
        live.push_back(all[i]);
      }
      while (!stop.load(std::memory_order_relaxed)) {
        UpdateBatch batch;
        const size_t batch_size = 1 + rng.NextBounded(4);
        for (size_t i = 0; i < batch_size; ++i) {
          if (!live.empty() && rng.NextBounded(100) < delete_pct) {
            const size_t pick = rng.NextBounded(live.size());
            batch.push_back(
                EdgeUpdate::Delete(live[pick].source, live[pick].target));
            live[pick] = live.back();
            live.pop_back();
          } else {
            const auto u = static_cast<VertexId>(rng.NextBounded(n));
            const auto v = static_cast<VertexId>(rng.NextBounded(n));
            if (u == v) continue;
            batch.push_back(EdgeUpdate::Insert(u, v));
            live.push_back({u, v});
          }
        }
        if (!batch.empty()) service.ApplyUpdate(batch);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  const std::vector<QueryPair> pool = MixedPairs(graph, kUniform, 1 << 12);
  size_t cursor = 0;
  std::vector<double> latencies_ns;
  for (auto _ : state) {
    const QueryPair q = pool[cursor++ % pool.size()];
    const auto begin = std::chrono::steady_clock::now();
    ServeAnswer answer = service.Query(q.source, q.target);
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(answer);
    latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writer_threads) th.join();
  service.Stop();

  std::sort(latencies_ns.begin(), latencies_ns.end());
  const double p50 = Percentile(latencies_ns, 0.50);
  const double p99 = Percentile(latencies_ns, 0.99);
  const ServeStats& stats = service.stats();
  const double deletes =
      std::max<double>(1.0, static_cast<double>(stats.deletes.load()));
  const double rebuilds = static_cast<double>(stats.rebuilds.load());
  state.counters["p50_ns"] = p50;
  state.counters["p99_ns"] = p99;
  state.counters["deletes"] = static_cast<double>(stats.deletes.load());
  state.counters["delete_verifies"] =
      static_cast<double>(stats.delete_verifies.load());
  state.counters["snapshots"] = rebuilds;
  state.counters["rebuilds_per_delete"] = rebuilds / deletes;

  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string prefix = std::string("bench.serve.churn.") +
                             (delete_pct >= 50 ? "delheavy" : "mixed");
  registry.GetGauge(prefix + ".p50_ns").Set(p50);
  registry.GetGauge(prefix + ".p99_ns").Set(p99);
  registry.GetGauge(prefix + ".deletes")
      .Set(static_cast<double>(stats.deletes.load()));
  registry.GetGauge(prefix + ".delete_verifies")
      .Set(static_cast<double>(stats.delete_verifies.load()));
  registry.GetGauge(prefix + ".rebuilds_per_delete").Set(rebuilds / deletes);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ServeChurnMix)
    // {writers, delete_pct}: steady churn, then the delete-heavy mix.
    ->Args({2, 30})
    ->Args({2, 70})
    ->Iterations(5000)
    ->Unit(benchmark::kMicrosecond);

// Snapshot startup (docs/SNAPSHOTS.md): one iteration restores the same
// labeling twice — element-by-element from the RCHX v1 stream, then
// zero-copy from the mmap'd v2 snapshot file — so the reported speedup is
// a same-run, same-file-cache comparison. The registry gauges
// (bench.snapshot.load_stream_ns / load_mmap_ns / load_speedup) are the
// failover-readiness numbers the acceptance criteria gate on. Arg:
// compressed storage on/off.
void BM_SnapshotStartupLoad(benchmark::State& state) {
  const bool compress = state.range(0) != 0;
  const VertexId n = 1 << 15;
  const Digraph graph = ScaleFreeDag(n, 3, kSeed);
  TwoHopStorageOptions storage;
  storage.compress = compress;
  PrunedTwoHop built(VertexOrder::kDegree, 0x70'6c'6cULL, 0, storage);
  built.Build(graph);

  const std::string mode = compress ? "compressed" : "flat";
  const std::string stream_path =
      "/tmp/reach_bench_snap_" + mode + ".v1.rchx";
  const std::string snap_path = "/tmp/reach_bench_snap_" + mode + ".rchx";
  uint64_t snapshot_bytes = 0;
  {
    std::ofstream out(stream_path, std::ios::binary | std::ios::trunc);
    if (!built.Save(out)) state.SkipWithError("stream save failed");
  }
  {
    std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
    if (!built.SaveSnapshot(out)) state.SkipWithError("snapshot save failed");
    snapshot_bytes = static_cast<uint64_t>(out.tellp());
  }

  double stream_ns = 0;
  double mmap_ns = 0;
  size_t iterations = 0;
  for (auto _ : state) {
    {
      PrunedTwoHop loaded;
      std::ifstream in(stream_path, std::ios::binary);
      const auto begin = std::chrono::steady_clock::now();
      if (!loaded.Load(in)) state.SkipWithError("stream load failed");
      stream_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
      benchmark::DoNotOptimize(loaded);
    }
    {
      PrunedTwoHop loaded;
      const auto begin = std::chrono::steady_clock::now();
      if (!loaded.LoadSnapshot(snap_path)) {
        state.SkipWithError("snapshot load failed");
      }
      mmap_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - begin)
                     .count();
      benchmark::DoNotOptimize(loaded);
    }
    ++iterations;
  }
  if (iterations == 0) return;
  stream_ns /= static_cast<double>(iterations);
  mmap_ns /= static_cast<double>(iterations);
  state.counters["load_stream_ns"] = stream_ns;
  state.counters["load_mmap_ns"] = mmap_ns;
  state.counters["load_speedup"] = stream_ns / std::max(1.0, mmap_ns);
  state.counters["snapshot_bytes_per_vertex"] =
      static_cast<double>(snapshot_bytes) / static_cast<double>(n);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string prefix = "bench.snapshot." + mode;
  registry.GetGauge(prefix + ".load_stream_ns").Set(stream_ns);
  registry.GetGauge(prefix + ".load_mmap_ns").Set(mmap_ns);
  registry.GetGauge(prefix + ".load_speedup")
      .Set(stream_ns / std::max(1.0, mmap_ns));
  registry.GetGauge(prefix + ".bytes_per_vertex")
      .Set(static_cast<double>(snapshot_bytes) / static_cast<double>(n));
  std::remove(stream_path.c_str());
  std::remove(snap_path.c_str());
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SnapshotStartupLoad)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);

// Aggregate read throughput: `threads` benchmark reader threads share one
// service while a single background writer streams inserts.
ReachService* g_service = nullptr;
std::atomic<bool>* g_stop = nullptr;
std::thread* g_writer = nullptr;

void BM_ServeReadThroughput(benchmark::State& state) {
  constexpr VertexId kN = 1 << 14;
  if (state.thread_index() == 0) {
    ServiceOptions options;
    options.spec = "pll";
    options.slots = static_cast<size_t>(state.threads());
    options.drain_threshold = 128;
    g_service = new ReachService(ScaleFreeDag(kN, 3, kSeed), options);
    g_service->Start();
    g_service->Flush();
    g_stop = new std::atomic<bool>{false};
    g_writer = new std::thread([stop = g_stop, service = g_service] {
      Xoshiro256ss rng(kSeed + 99);
      while (!stop->load(std::memory_order_relaxed)) {
        service->ApplyUpdate(
            {EdgeUpdate::Insert(static_cast<VertexId>(rng.NextBounded(kN)),
                                static_cast<VertexId>(rng.NextBounded(kN)))});
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  Xoshiro256ss rng(kSeed + 13 * (state.thread_index() + 1));
  for (auto _ : state) {
    ServeAnswer answer =
        g_service->Query(static_cast<VertexId>(rng.NextBounded(kN)),
                         static_cast<VertexId>(rng.NextBounded(kN)));
    benchmark::DoNotOptimize(answer);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    g_stop->store(true, std::memory_order_relaxed);
    g_writer->join();
    g_service->Stop();
    state.counters["snapshots"] =
        static_cast<double>(g_service->stats().rebuilds.load());
    delete g_writer;
    delete g_stop;
    delete g_service;
    g_writer = nullptr;
    g_stop = nullptr;
    g_service = nullptr;
  }
}

BENCHMARK(BM_ServeReadThroughput)
    ->ThreadRange(1, 8)
    ->Iterations(20000)
    ->Unit(benchmark::kMicrosecond);

// Overload mix (docs/ROBUSTNESS.md): reader threads hammer a service
// whose write stream keeps a fat pending buffer (so admitted full-tier
// queries pay real delta-closure work), with the admission gate off
// (Arg 0) vs on (Arg N = max_inflight). The headline counters are the
// latency percentiles *of admitted queries only*: with the gate on,
// overload shows up as shed/degraded answers instead of a collapsing
// p99 — the acceptance criterion is p99_admitted(gated) staying within
// ~2x of the single-reader unloaded baseline, where the ungated run
// tails off far worse.
ReachService* g_ov_service = nullptr;
std::atomic<bool>* g_ov_stop = nullptr;
std::thread* g_ov_writer = nullptr;
std::mutex g_ov_mu;
std::vector<double> g_ov_latencies;         // admitted queries, merged
std::atomic<uint64_t> g_ov_answered{0};     // non-shed answers seen
std::atomic<uint64_t> g_ov_shed{0};
std::atomic<int> g_ov_pending_merges{0};

void BM_ServeOverloadMix(benchmark::State& state) {
  constexpr VertexId kN = 1 << 12;
  const auto max_inflight = static_cast<size_t>(state.range(0));
  if (state.thread_index() == 0) {
    ServiceOptions options;
    options.spec = "pll";
    options.slots = static_cast<size_t>(state.threads());
    options.drain_threshold = 64;  // fat enough deltas to cost real work
    options.max_inflight_queries = max_inflight;
    g_ov_service = new ReachService(ScaleFreeDag(kN, 3, kSeed), options);
    g_ov_service->Start();
    g_ov_service->Flush();
    g_ov_latencies.clear();
    g_ov_answered.store(0);
    g_ov_shed.store(0);
    g_ov_pending_merges.store(state.threads());
    g_ov_stop = new std::atomic<bool>{false};
    g_ov_writer = new std::thread([stop = g_ov_stop, svc = g_ov_service] {
      Xoshiro256ss rng(kSeed + 4242);
      while (!stop->load(std::memory_order_relaxed)) {
        svc->ApplyUpdate(
            {EdgeUpdate::Insert(static_cast<VertexId>(rng.NextBounded(kN)),
                                static_cast<VertexId>(rng.NextBounded(kN)))});
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  Xoshiro256ss rng(kSeed + 31 * (state.thread_index() + 1));
  std::vector<double> local_ns;
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.NextBounded(kN));
    const auto t = static_cast<VertexId>(rng.NextBounded(kN));
    const auto begin = std::chrono::steady_clock::now();
    const ServeAnswer answer = g_ov_service->Query(s, t);
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(answer);
    if (answer.source == AnswerSource::kShedded) {
      g_ov_shed.fetch_add(1, std::memory_order_relaxed);
    } else {
      g_ov_answered.fetch_add(1, std::memory_order_relaxed);
      local_ns.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
              .count());
    }
  }
  {
    std::lock_guard<std::mutex> lock(g_ov_mu);
    g_ov_latencies.insert(g_ov_latencies.end(), local_ns.begin(),
                          local_ns.end());
  }
  g_ov_pending_merges.fetch_sub(1, std::memory_order_acq_rel);
  if (state.thread_index() == 0) {
    // Post-loop code runs per thread with no barrier: wait for every
    // reader to merge its latencies before computing the percentiles.
    while (g_ov_pending_merges.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
    g_ov_stop->store(true, std::memory_order_relaxed);
    g_ov_writer->join();
    g_ov_service->Stop();

    std::sort(g_ov_latencies.begin(), g_ov_latencies.end());
    const double p50 = Percentile(g_ov_latencies, 0.50);
    const double p99 = Percentile(g_ov_latencies, 0.99);
    const double answered =
        std::max<double>(1.0, static_cast<double>(g_ov_answered.load()));
    const double shed = static_cast<double>(g_ov_shed.load());
    const ServeStats& stats = g_ov_service->stats();
    const double degraded =
        static_cast<double>(stats.admission_cache_only.load() +
                            stats.admission_bfs_only.load());
    state.counters["p50_admitted_ns"] = p50;
    state.counters["p99_admitted_ns"] = p99;
    state.counters["shed_rate"] = shed / (answered + shed);
    state.counters["degraded_rate"] = degraded / answered;
    state.counters["snapshots"] =
        static_cast<double>(stats.rebuilds.load());

    MetricsRegistry& registry = MetricsRegistry::Global();
    const std::string prefix =
        std::string("bench.serve.overload.") +
        (state.threads() == 1
             ? "baseline"
             : (max_inflight == 0 ? "ungated" : "gated"));
    registry.GetGauge(prefix + ".p50_admitted_ns").Set(p50);
    registry.GetGauge(prefix + ".p99_admitted_ns").Set(p99);
    registry.GetGauge(prefix + ".shed_rate").Set(shed / (answered + shed));
    registry.GetGauge(prefix + ".degraded_rate").Set(degraded / answered);

    delete g_ov_writer;
    delete g_ov_stop;
    delete g_ov_service;
    g_ov_writer = nullptr;
    g_ov_stop = nullptr;
    g_ov_service = nullptr;
  }
  state.SetItemsProcessed(state.iterations());
}

// The single-reader unloaded reference first, then the 8-reader overload
// pair: admission gate off vs capped at 4.
BENCHMARK(BM_ServeOverloadMix)
    ->Arg(0)
    ->Threads(1)
    ->Iterations(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServeOverloadMix)
    ->Arg(0)
    ->Arg(4)
    ->Threads(8)
    ->Iterations(2000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_serve");
}
