// Regenerates the §5 "parallel computation of indexes" direction as a
// speedup series: every parallelized builder (transitive closure's
// dependency-level bitset sweep, PLL's rank-batched pruned BFS, FERRARI's
// level-parallel interval merge, BFL's parallel bloom sweeps, GRAIL's k
// independent traversals) built with 1, 2, 4, and 8 threads on a larger
// DAG. Rows at threads>1 carry a `speedup_vs_1t` counter against the
// serial row of the same family (rows run in registration order, so the
// threads=1 baseline is always measured first).
//
// A second series drives the same workload through the parallel
// `BatchQuery` API on the PLL index.
//
// Row naming: parallel/<family>/threads=<t> and
//             parallel/pll-batch-query/threads=<t>.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "bench_common.h"
#include "plain/bfl.h"
#include "plain/ferrari.h"
#include "plain/grail.h"
#include "plain/pruned_two_hop.h"
#include "traversal/transitive_closure.h"

namespace reach::bench {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};

// threads=1 build milliseconds per family, filled by the serial rows.
std::map<std::string, double>& BaselineMs() {
  static std::map<std::string, double> baselines;
  return baselines;
}

using IndexFactory =
    std::function<std::unique_ptr<ReachabilityIndex>(size_t threads)>;

void RegisterBuildSweep(const Digraph* graph, const std::string& family,
                        IndexFactory make) {
  for (const size_t threads : kThreadSweep) {
    ::benchmark::RegisterBenchmark(
        ("parallel/" + family + "/threads=" + std::to_string(threads))
            .c_str(),
        [graph, family, make, threads](::benchmark::State& state) {
          IndexStats stats;
          for (auto _ : state) {
            auto index = make(threads);
            index->Build(*graph);
            ::benchmark::DoNotOptimize(index->IndexSizeBytes());
            stats = index->Stats();
          }
          ReportBuildCounters(state, stats);
          ReportThreads(state, threads);
          const double build_ms =
              static_cast<double>(stats.build_time.count()) / 1e6;
          if (threads == 1) {
            BaselineMs()[family] = build_ms;
          } else if (const auto it = BaselineMs().find(family);
                     it != BaselineMs().end() && build_ms > 0.0) {
            state.counters["speedup_vs_1t"] = it->second / build_ms;
          }
        })
        ->Iterations(2)
        ->Unit(::benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
  }
}

void RegisterBatchQuerySweep(const Digraph* graph) {
  // One serial-built PLL index shared by all rows; built on first use so
  // --benchmark_filter runs that skip this series pay nothing.
  static std::unique_ptr<PrunedTwoHop> index;
  static std::vector<QueryPair> queries;
  for (const size_t threads : kThreadSweep) {
    ::benchmark::RegisterBenchmark(
        ("parallel/pll-batch-query/threads=" + std::to_string(threads))
            .c_str(),
        [graph, threads](::benchmark::State& state) {
          if (index == nullptr) {
            index = std::make_unique<PrunedTwoHop>(
                VertexOrder::kDegree, /*seed=*/0x70'6c'6cULL,
                /*num_threads=*/1);
            index->Build(*graph);
            queries = RandomPairs(*graph, 1 << 16, kSeed + 141);
          }
          RunBatchQueryLoop(state, *index, queries, threads);
        })
        ->Iterations(4)
        ->Unit(::benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
  }
}

void RegisterAll() {
  const VertexId n = 65536;
  auto* graph = new Digraph(
      RandomDag(n, 4 * static_cast<size_t>(n), kSeed + 140));

  RegisterBuildSweep(graph, "tc", [](size_t threads) {
    return std::make_unique<TransitiveClosure>(threads);
  });
  RegisterBuildSweep(graph, "pll", [](size_t threads) {
    return std::make_unique<PrunedTwoHop>(VertexOrder::kDegree,
                                          /*seed=*/0x70'6c'6cULL, threads);
  });
  RegisterBuildSweep(graph, "ferrari-k4", [](size_t threads) {
    return std::make_unique<Ferrari>(/*k=*/4, threads);
  });
  RegisterBuildSweep(graph, "bfl-256", [](size_t threads) {
    return std::make_unique<Bfl>(/*filter_bits=*/256,
                                 /*seed=*/0x62'66'6cULL, threads);
  });
  RegisterBuildSweep(graph, "grail-k8", [](size_t threads) {
    return std::make_unique<Grail>(/*k=*/8, /*seed=*/7, threads);
  });
  RegisterBatchQuerySweep(graph);
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_parallel_build",
                                 &reach::bench::RegisterAll);
}
