// Regenerates the §5 "parallel computation of indexes" direction as a
// speedup series: GRAIL's k independent traversals built with 1, 2, 4,
// and 8 threads on a larger DAG.
//
// Row naming: parallel/grail-k8/threads=<t>.

#include "bench_common.h"
#include "plain/grail.h"

namespace reach::bench {
namespace {

void RegisterAll() {
  const VertexId n = 65536;
  auto* graph = new Digraph(
      RandomDag(n, 4 * static_cast<size_t>(n), kSeed + 140));

  for (size_t threads : {1, 2, 4, 8}) {
    ::benchmark::RegisterBenchmark(
        ("parallel/grail-k8/threads=" + std::to_string(threads)).c_str(),
        [graph, threads](::benchmark::State& state) {
          IndexStats stats;
          for (auto _ : state) {
            Grail index(/*k=*/8, /*seed=*/7, threads);
            index.Build(*graph);
            ::benchmark::DoNotOptimize(index.IndexSizeBytes());
            stats = index.Stats();
          }
          ReportBuildCounters(state, stats);
          state.counters["threads"] = static_cast<double>(threads);
        })
        ->Iterations(2)
        ->Unit(::benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reach::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
