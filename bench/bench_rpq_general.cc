// Regenerates the §5 open-challenge comparison: general path constraints
// evaluated by automaton-guided traversal (the §2.3 FA method) versus the
// specialized indexes where the constraint happens to be expressible —
// alternation-star constraints against the P2H labeled 2-hop, and
// concatenation-star constraints against the RLC index. The gap between
// the general evaluator and the specialized lookups is exactly the
// motivation for "one indexing technique for general path constraints".
//
// Row naming: rpq/<constraint-class>/<engine>.

#include <memory>

#include "bench_common.h"
#include "graph/rng.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "rlc/rlc_index.h"
#include "rpq/rpq_evaluator.h"
#include "rpq/rpq_template_index.h"

namespace reach::bench {
namespace {

std::vector<QueryPair> Pairs(VertexId n, size_t count, uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<QueryPair> pairs;
  for (size_t i = 0; i < count; ++i) {
    pairs.push_back({static_cast<VertexId>(rng.NextBounded(n)),
                     static_cast<VertexId>(rng.NextBounded(n))});
  }
  return pairs;
}

void RegisterAll() {
  const VertexId n = 1024;
  const std::vector<std::string> names = {"a", "b", "c", "d"};
  auto* graph = new LabeledDigraph(
      RandomLabeledDigraph(n, 4 * static_cast<size_t>(n), 4, kSeed + 120));
  auto* queries = new std::vector<QueryPair>(Pairs(n, 300, kSeed + 121));

  // Alternation class: (a ∪ b)*.
  auto* alt_query = RpqQuery::Compile("(a|b)*", names, 4).release();
  auto* p2h = new PrunedLabeledTwoHop();
  p2h->Build(*graph);
  ::benchmark::RegisterBenchmark(
      "rpq/alternation-(a|b)*/fa-guided-bfs",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const QueryPair& q) {
          return alt_query->Evaluate(*graph, q.source, q.target);
        });
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);
  ::benchmark::RegisterBenchmark(
      "rpq/alternation-(a|b)*/p2h-lookup",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const QueryPair& q) {
          return p2h->Query(q.source, q.target, 0b0011);
        });
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);

  // Concatenation class: (a·b)*.
  auto* concat_query = RpqQuery::Compile("(a.b)*", names, 4).release();
  auto* rlc = new RlcIndex();
  rlc->Build(*graph, {{0, 1}});
  ::benchmark::RegisterBenchmark(
      "rpq/concatenation-(a.b)*/fa-guided-bfs",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const QueryPair& q) {
          return concat_query->Evaluate(*graph, q.source, q.target);
        });
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);
  ::benchmark::RegisterBenchmark(
      "rpq/concatenation-(a.b)*/rlc-lookup",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const QueryPair& q) {
          return rlc->Query(q.source, q.target, {0, 1});
        });
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);

  // General class (the §5 gap): a*.(b|c).d* — evaluated online, and via
  // the prototype general-template index (product 2-hop) that closes it.
  auto* general_query =
      RpqQuery::Compile("a*.(b|c).d*", names, 4).release();
  ::benchmark::RegisterBenchmark(
      "rpq/general-a*.(b|c).d*/fa-guided-bfs",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const QueryPair& q) {
          return general_query->Evaluate(*graph, q.source, q.target);
        });
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);

  auto* templates = new RpqTemplateIndex();
  templates->Build(*graph, {"a*.(b|c).d*"}, names);
  ::benchmark::RegisterBenchmark(
      "rpq/general-a*.(b|c).d*/template-2hop-lookup",
      [=](::benchmark::State& state) {
        RunQueryLoop(state, *queries, [&](const QueryPair& q) {
          return templates->Query(q.source, q.target, "a*.(b|c).d*");
        });
        state.counters["index_KB"] = ::benchmark::Counter(
            static_cast<double>(templates->IndexSizeBytes()) / 1024.0);
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_rpq_general",
                                 &reach::bench::RegisterAll);
}
