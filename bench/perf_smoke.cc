// The CI perf-regression gate: a self-contained harness (no
// google-benchmark) that measures index build time, query latency
// percentiles, and — for the deletion-capable specs — the time to apply
// a fixed mixed insert/delete stream through `ApplyUpdate`, on small
// generator graphs, comparing against a committed baseline
// (bench/baselines/perf_smoke_seed.json).
//
// Absolute times are useless across machines, so every metric is
// normalized by a same-run calibration loop — a fixed amount of
// branch-light integer work whose duration tracks the machine's scalar
// speed. A metric regresses when
//
//   (metric / calibration) > (baseline_metric / baseline_calibration)
//                            * (1 + tolerance)
//
// Small graphs keep the gate under a few seconds; each measurement is the
// best of --repeat runs (default 3), and a failing comparison re-measures
// once before failing, so scheduler noise has to strike the same metric
// in two whole rounds (eight best-of runs) to produce a false alarm.
//
// Usage:
//   perf_smoke [--out FILE] [--baseline FILE] [--tolerance 0.25]
//              [--n 4096] [--repeat 3]
//
// With --out, results are written as JSON (schema "reach.bench.v1"; flat
// "key": number metrics, parseable by the loader below). With --baseline,
// the run gates: exit 0 when every shared metric is within tolerance,
// exit 1 with a per-metric report otherwise. See docs/TRACING.md.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/edge_update.h"
#include "core/index_factory.h"
#include "core/query_workload.h"
#include "core/reachability_index.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "par/thread_pool.h"

namespace {

using reach::Digraph;
using reach::QueryPair;
using reach::VertexId;
using Clock = std::chrono::steady_clock;

constexpr uint64_t kSeed = 0xbe9c;
constexpr char kSchema[] = "reach.bench.v1";

double ElapsedMs(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             end - begin)
      .count();
}

// A fixed quantum of integer work (xorshift mixing). Its wall time is the
// run's speed unit: every measured metric is divided by it before
// comparing against the baseline, absorbing machine-to-machine (and most
// run-to-run) frequency differences.
double CalibrationMs() {
  double best = 1e300;
  for (int run = 0; run < 3; ++run) {
    const auto begin = Clock::now();
    uint64_t x = kSeed | 1;
    uint64_t sink = 0;
    for (int i = 0; i < 40'000'000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      sink += x;
    }
    const auto end = Clock::now();
    // `sink` must stay alive or the loop folds away.
    if (sink == 0) std::fprintf(stderr, "calibration sink hit zero\n");
    best = std::min(best, ElapsedMs(begin, end));
  }
  return best;
}

struct SmokeCase {
  std::string graph_name;
  Digraph graph;
  std::string spec;
};

std::vector<SmokeCase> Roster(VertexId n) {
  std::vector<SmokeCase> cases;
  Digraph er = reach::RandomDigraph(n, 4 * static_cast<size_t>(n), kSeed);
  Digraph dag = reach::RandomDag(n, 4 * static_cast<size_t>(n), kSeed + 1);
  cases.push_back({"er-cyclic-avg4", er, "pll"});
  cases.push_back({"er-cyclic-avg4", er, "pll:fastpath=1"});
  cases.push_back({"er-cyclic-avg4", er, "dagger"});
  cases.push_back({"er-cyclic-avg4", std::move(er), "grail"});
  cases.push_back({"dag-avg4", dag, "pll"});
  cases.push_back({"dag-avg4", dag, "pll:compress=1"});
  cases.push_back({"dag-avg4", std::move(dag), "grail"});
  return cases;
}

// Flat metric map: "<spec>/<graph>/<what>" -> value. Lower is better for
// every metric the gate compares.
using Metrics = std::map<std::string, double>;

double PercentileNs(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  return sorted[static_cast<size_t>(p * (sorted.size() - 1))];
}

// One full measurement pass over the roster; each metric is the best of
// `repeat` runs (min — the cleanest observation of the machine).
Metrics Measure(VertexId n, int repeat) {
  Metrics metrics;
  for (const SmokeCase& c : Roster(n)) {
    const std::string key = c.spec + "/" + c.graph_name;
    double best_build_ms = 1e300;
    double best_p50_ns = 1e300;
    double best_p99_ns = 1e300;
    double best_churn_ms = 1e300;
    bool measured_churn = false;

    // A fixed mixed write stream (70/30 insert/delete over the case
    // graph) for the deletion-capable specs; identical every run. Applied
    // single-update like the serve drain loop applies its smallest
    // batches, rebuilding only when the staleness budget recommends it.
    // 64 updates keeps the whole gate in seconds — deletes dominate the
    // cost (each damage sweep walks a transitive closure).
    std::vector<reach::EdgeUpdate> churn;
    {
      reach::Xoshiro256ss rng(kSeed + 13);
      std::vector<reach::Edge> live = c.graph.Edges();
      while (churn.size() < 64) {
        if (!live.empty() && rng.NextBounded(10) < 3) {
          const size_t pick = rng.NextBounded(live.size());
          const reach::Edge e = live[pick];
          churn.push_back(reach::EdgeUpdate::Delete(e.source, e.target));
          live[pick] = live.back();
          live.pop_back();
        } else {
          const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
          const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
          if (u == v) continue;
          churn.push_back(reach::EdgeUpdate::Insert(u, v));
          live.push_back({u, v});
        }
      }
    }

    // A mixed workload, dominated by random pairs like the surveyed
    // evaluations; regenerated identically every run (fixed seeds).
    std::vector<QueryPair> queries = reach::RandomPairs(c.graph, 1500, kSeed + 10);
    const std::vector<QueryPair> pos =
        reach::ReachablePairs(c.graph, 250, kSeed + 11);
    const std::vector<QueryPair> neg =
        reach::UnreachablePairs(c.graph, 250, kSeed + 12);
    queries.insert(queries.end(), pos.begin(), pos.end());
    queries.insert(queries.end(), neg.begin(), neg.end());

    for (int run = 0; run < repeat; ++run) {
      reach::MadeIndex made = reach::MakeIndex(c.spec);
      std::unique_ptr<reach::ReachabilityIndex> index = std::move(made.plain);
      if (index == nullptr) {
        std::fprintf(stderr, "perf_smoke: unknown spec '%s'\n",
                     c.spec.c_str());
        std::exit(2);
      }
      const auto build_begin = Clock::now();
      index->Build(c.graph);
      best_build_ms =
          std::min(best_build_ms, ElapsedMs(build_begin, Clock::now()));

      // Per-query latency: batches of 32 between clock reads keep the
      // clock overhead out of the percentile while preserving enough
      // samples for a stable p50 on a 2000-query workload.
      constexpr size_t kBatch = 32;
      std::vector<double> batch_ns;
      batch_ns.reserve(queries.size() / kBatch + 1);
      size_t positives = 0;
      for (size_t i = 0; i < queries.size(); i += kBatch) {
        const size_t limit = std::min(i + kBatch, queries.size());
        const auto begin = Clock::now();
        for (size_t j = i; j < limit; ++j) {
          positives +=
              index->Query(queries[j].source, queries[j].target) ? 1 : 0;
        }
        const auto end = Clock::now();
        batch_ns.push_back(ElapsedMs(begin, end) * 1e6 /
                           static_cast<double>(limit - i));
      }
      if (positives == 0) {
        std::fprintf(stderr, "perf_smoke: %s answered nothing true\n",
                     key.c_str());
      }
      std::sort(batch_ns.begin(), batch_ns.end());
      best_p50_ns = std::min(best_p50_ns, PercentileNs(batch_ns, 0.50));
      best_p99_ns = std::min(best_p99_ns, PercentileNs(batch_ns, 0.99));

      // Decremental churn: apply the fixed mixed stream through the
      // batched write API. Runs after the query loop, so the query
      // percentiles above always describe the freshly built index.
      if (made.caps.decremental) {
        auto* dyn = dynamic_cast<reach::DynamicReachabilityIndex*>(index.get());
        if (dyn != nullptr) {
          const auto churn_begin = Clock::now();
          for (const reach::EdgeUpdate& u : churn) {
            if (dyn->ApplyUpdate({u}).rebuild_recommended) {
              dyn->RebuildFromUpdates();
            }
          }
          best_churn_ms =
              std::min(best_churn_ms, ElapsedMs(churn_begin, Clock::now()));
          measured_churn = true;
        }
      }
    }
    metrics[key + "/build_ms"] = best_build_ms;
    metrics[key + "/query_p50_ns"] = best_p50_ns;
    // p99 is informational (too noisy at this scale to gate on; the
    // loader below skips it — see GatedMetric).
    metrics[key + "/query_p99_ns"] = best_p99_ns;
    if (measured_churn) metrics[key + "/churn_ms"] = best_churn_ms;
  }
  return metrics;
}

// Build time, p50, and churn-stream time gate; p99 on a 4k-vertex graph
// is dominated by scheduler noise and is recorded for eyeballs only.
bool GatedMetric(const std::string& name) {
  return name.find("/build_ms") != std::string::npos ||
         name.find("/query_p50_ns") != std::string::npos ||
         name.find("/churn_ms") != std::string::npos;
}

struct Report {
  double calibration_ms = 0;
  Metrics metrics;
};

std::string ToJson(const Report& report) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\n  \"schema\": \"" << kSchema << "\",\n";
  out << "  \"calibration_ms\": " << report.calibration_ms << ",\n";
  out << "  \"metrics\": {\n";
  bool first = true;
  for (const auto& [name, value] : report.metrics) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << name << "\": " << value;
  }
  out << "\n  }\n}\n";
  return out.str();
}

// Loads a report written by ToJson. Deliberately minimal: it only
// understands this tool's own flat `"key": number` output (plus the
// schema string, which it checks), not general JSON.
bool LoadReport(const std::string& path, Report* report, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  bool saw_schema = false;
  while (std::getline(in, line)) {
    const size_t key_begin = line.find('"');
    if (key_begin == std::string::npos) continue;
    const size_t key_end = line.find('"', key_begin + 1);
    if (key_end == std::string::npos) continue;
    const std::string key = line.substr(key_begin + 1, key_end - key_begin - 1);
    const size_t colon = line.find(':', key_end);
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.back() == ',' || value.back() == ' ' ||
                              value.back() == '\r')) {
      value.pop_back();
    }
    if (key == "schema") {
      saw_schema = value.find(kSchema) != std::string::npos;
      continue;
    }
    if (key == "metrics") continue;
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) continue;
    if (key == "calibration_ms") {
      report->calibration_ms = parsed;
    } else {
      report->metrics[key] = parsed;
    }
  }
  if (!saw_schema) {
    *error = path + " is not a " + std::string(kSchema) + " report";
    return false;
  }
  if (report->calibration_ms <= 0) {
    *error = path + " has no calibration_ms";
    return false;
  }
  return true;
}

// Returns the metrics (shared between both reports) whose normalized
// value regressed beyond `tolerance`.
std::vector<std::string> FindRegressions(const Report& baseline,
                                         const Report& current,
                                         double tolerance) {
  std::vector<std::string> regressed;
  for (const auto& [name, base_value] : baseline.metrics) {
    if (!GatedMetric(name)) continue;
    const auto it = current.metrics.find(name);
    if (it == current.metrics.end() || base_value <= 0) continue;
    const double base_norm = base_value / baseline.calibration_ms;
    const double cur_norm = it->second / current.calibration_ms;
    if (cur_norm > base_norm * (1.0 + tolerance)) regressed.push_back(name);
  }
  return regressed;
}

void PrintComparison(const Report& baseline, const Report& current,
                     double tolerance) {
  std::fprintf(stderr, "%-36s %12s %12s %8s\n", "metric", "baseline*",
               "current*", "ratio");
  for (const auto& [name, base_value] : baseline.metrics) {
    const auto it = current.metrics.find(name);
    if (it == current.metrics.end() || base_value <= 0) continue;
    const double base_norm = base_value / baseline.calibration_ms;
    const double cur_norm = it->second / current.calibration_ms;
    const double ratio = cur_norm / base_norm;
    std::fprintf(stderr, "%-36s %12.4f %12.4f %7.2fx%s%s\n", name.c_str(),
                 base_norm, cur_norm, ratio,
                 !GatedMetric(name) ? "  (not gated)" : "",
                 GatedMetric(name) && ratio > 1.0 + tolerance
                     ? "  <-- REGRESSED"
                     : "");
  }
  std::fprintf(stderr,
               "(* = per calibration unit; baseline calib %.1f ms, current "
               "%.1f ms; tolerance %.0f%%)\n",
               baseline.calibration_ms, current.calibration_ms,
               tolerance * 100);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string baseline_path;
  double tolerance = 0.25;
  VertexId n = 4096;
  int repeat = 3;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = need_value("--out");
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = need_value("--baseline");
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      tolerance = std::strtod(need_value("--tolerance"), nullptr);
    } else if (std::strcmp(argv[i], "--n") == 0) {
      n = static_cast<VertexId>(std::strtoul(need_value("--n"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--repeat") == 0) {
      repeat = static_cast<int>(std::strtol(need_value("--repeat"), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: perf_smoke [--out FILE] [--baseline FILE] "
                   "[--tolerance 0.25] [--n 4096] [--repeat 3]\n");
      return 2;
    }
  }
  if (n == 0 || repeat <= 0) {
    std::fprintf(stderr, "error: --n and --repeat must be positive\n");
    return 2;
  }
  // Single-threaded builds: the gate measures the code, not the CI
  // machine's core count.
  reach::SetDefaultThreads(1);

  Report current;
  current.calibration_ms = CalibrationMs();
  current.metrics = Measure(n, repeat);

  if (!baseline_path.empty()) {
    Report baseline;
    std::string error;
    if (!LoadReport(baseline_path, &baseline, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::vector<std::string> regressed =
        FindRegressions(baseline, current, tolerance);
    if (!regressed.empty()) {
      // One retry: re-measure everything (calibration included) and keep
      // the per-metric best, so a transient stall must survive two full
      // rounds to fail the gate.
      std::fprintf(stderr,
                   "perf_smoke: %zu metric(s) regressed; re-measuring once\n",
                   regressed.size());
      Report second;
      second.calibration_ms = CalibrationMs();
      second.metrics = Measure(n, repeat);
      if (second.calibration_ms < current.calibration_ms) {
        current.calibration_ms = second.calibration_ms;
      }
      for (auto& [name, value] : current.metrics) {
        const auto it = second.metrics.find(name);
        if (it != second.metrics.end()) value = std::min(value, it->second);
      }
      regressed = FindRegressions(baseline, current, tolerance);
    }
    PrintComparison(baseline, current, tolerance);
    if (!regressed.empty()) {
      std::fprintf(stderr, "perf_smoke: FAIL — %zu metric(s) regressed\n",
                   regressed.size());
      return 1;
    }
    std::fprintf(stderr, "perf_smoke: OK\n");
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << ToJson(current);
    std::fprintf(stderr, "perf_smoke: report written to %s\n",
                 out_path.c_str());
  } else if (baseline_path.empty()) {
    std::fputs(ToJson(current).c_str(), stdout);
  }
  return 0;
}
