// Regenerates the §2.3 claims: online traversal "visits a large portion of
// the graph" (vertex-visit counters per query class, BiBFS's advantage on
// negatives), and indexes answer "an order of magnitude faster than using
// only graph traversal" (§3.1) — BFS/DFS/BiBFS latency side by side with a
// complete (PLL) and a partial (BFL) index on the same workloads.
//
// Row naming: traversal/<graph>/<engine>/<class>.

#include <memory>

#include "bench_common.h"
#include "core/index_factory.h"
#include "traversal/online_search.h"

namespace reach::bench {
namespace {

void RegisterVisitCounter(const std::string& name, const Digraph& graph,
                          TraversalKind kind,
                          const std::vector<QueryPair>& queries) {
  ::benchmark::RegisterBenchmark(
      name.c_str(), [&graph, kind, &queries](::benchmark::State& state) {
        SearchWorkspace ws;
        size_t total_visited = 0;
        size_t positives = 0;
        for (auto _ : state) {
          for (const QueryPair& q : queries) {
            size_t visited = 0;
            bool result = false;
            switch (kind) {
              case TraversalKind::kBfs:
                result =
                    BfsReachability(graph, q.source, q.target, ws, &visited);
                break;
              case TraversalKind::kDfs:
                result =
                    DfsReachability(graph, q.source, q.target, ws, &visited);
                break;
              case TraversalKind::kBiBfs:
                result = BiBfsReachability(graph, q.source, q.target, ws,
                                           &visited);
                break;
            }
            total_visited += visited;
            positives += result;
          }
        }
        ::benchmark::DoNotOptimize(positives);
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(queries.size()));
        state.counters["visited_per_query"] = ::benchmark::Counter(
            static_cast<double>(total_visited) /
            (static_cast<double>(state.iterations()) * queries.size()));
        state.counters["graph_fraction"] = ::benchmark::Counter(
            static_cast<double>(total_visited) /
            (static_cast<double>(state.iterations()) * queries.size() *
             graph.NumVertices()));
      })
      ->Iterations(2)
      ->Unit(::benchmark::kMicrosecond);
}

void RegisterAll() {
  const VertexId n = 4096;
  auto* graph = new Digraph(
      RandomDigraph(n, 4 * static_cast<size_t>(n), kSeed + 80));
  auto* wl = new PlainWorkload(MakePlainWorkload(*graph, 500));

  const struct {
    const char* name;
    TraversalKind kind;
  } engines[] = {{"bfs", TraversalKind::kBfs},
                 {"dfs", TraversalKind::kDfs},
                 {"bibfs", TraversalKind::kBiBfs}};
  const struct {
    const char* name;
    const std::vector<QueryPair>* queries;
  } classes[] = {{"pos", &wl->positive},
                 {"neg", &wl->negative},
                 {"rand", &wl->random}};
  for (const auto& engine : engines) {
    for (const auto& qc : classes) {
      RegisterVisitCounter(std::string("traversal/er-avg4/") + engine.name +
                               "/" + qc.name,
                           *graph, engine.kind, *qc.queries);
    }
  }

  // The index side of the §3.1 ">= 10x" comparison.
  for (const char* spec : {"pll", "bfl", "grail"}) {
    auto index = std::shared_ptr<ReachabilityIndex>(MakeIndex(spec).plain);
    index->Build(*graph);
    for (const auto& qc : classes) {
      ::benchmark::RegisterBenchmark(
          (std::string("traversal/er-avg4/") + spec + "/" + qc.name).c_str(),
          [index, queries = qc.queries](::benchmark::State& state) {
            RunQueryLoop(state, *queries, [&](const QueryPair& q) {
              return index->Query(q.source, q.target);
            });
          })
          ->Iterations(2)
          ->Unit(::benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace reach::bench

int main(int argc, char** argv) {
  return reach::bench::BenchMain(argc, argv, "bench_traversal_baselines",
                                 &reach::bench::RegisterAll);
}
